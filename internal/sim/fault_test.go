package sim

import (
	"reflect"
	"testing"

	"github.com/reprolab/hirise/internal/crossbar"
	"github.com/reprolab/hirise/internal/fault"
	"github.com/reprolab/hirise/internal/topo"
	"github.com/reprolab/hirise/internal/traffic"
)

func hiriseCfg(channels int, scheme topo.Scheme) topo.Config {
	return topo.Config{
		Radix: 64, Layers: 4, Channels: channels,
		Alloc: topo.InputBinned, Scheme: scheme, Classes: 3,
	}
}

func mustPlan(t testing.TB, faults ...fault.Fault) *fault.Plan {
	t.Helper()
	p, err := fault.NewPlan(faults...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestEmptyFaultPlaneByteIdentical pins the tentpole's compatibility
// contract: attaching a nil or empty fault plane (with the checker on)
// changes not one bit of the result.
func TestEmptyFaultPlaneByteIdentical(t *testing.T) {
	base := Config{
		Switch:  hirise(t, 4, topo.CLRG),
		Traffic: traffic.Uniform{Radix: 64},
		Load:    0.6, Warmup: 1000, Measure: 5000, Seed: 11,
	}
	want := run(t, base)

	empty := base
	empty.Switch = hirise(t, 4, topo.CLRG)
	empty.Faults = mustPlan(t)
	empty.Check = true
	got := run(t, empty)

	if !reflect.DeepEqual(want, got) {
		t.Fatalf("empty fault plane changed the result:\nwant %+v\ngot  %+v", want, got)
	}
	if got.Fault != nil {
		t.Fatalf("empty plan populated FaultStats %+v", got.Fault)
	}
}

// TestFaultRunsAreDeterministic runs the same faulty configuration
// twice and requires identical results — the fault plane must inherit
// the simulator's reproducibility contract.
func TestFaultRunsAreDeterministic(t *testing.T) {
	mk := func() Result {
		plan, err := fault.Spec{
			Seed: 5, Campaign: "det", Cfg: hiriseCfg(4, topo.CLRG),
			FailChannels: 8, TransientRate: 0.0005, Horizon: 6000,
		}.Build()
		if err != nil {
			t.Fatal(err)
		}
		return run(t, Config{
			Switch:  hirise(t, 4, topo.CLRG),
			Traffic: traffic.Uniform{Radix: 64},
			Load:    0.8, Warmup: 1000, Measure: 5000, Seed: 11,
			Faults: plan, Check: true,
		})
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same faulty config diverged:\n%+v\n%+v", a, b)
	}
}

// TestLossyLinkRetransmissionRecovers subjects the switch to transient
// lossy outages under load with the invariant checker on: flits are
// dropped, sources retransmit, nothing is lost or duplicated, and
// traffic still flows.
func TestLossyLinkRetransmissionRecovers(t *testing.T) {
	plan, err := fault.Spec{
		Seed: 3, Campaign: "lossy", Cfg: hiriseCfg(4, topo.CLRG),
		TransientRate: 0.001, RepairMean: 32, Horizon: 6000,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	r := run(t, Config{
		Switch:  hirise(t, 4, topo.CLRG),
		Traffic: traffic.Uniform{Radix: 64},
		Load:    0.8, Warmup: 1000, Measure: 5000, Seed: 11,
		Faults: plan, Check: true,
	})
	if r.Fault == nil {
		t.Fatal("faulty run reported no FaultStats")
	}
	if r.Fault.FlitsDropped == 0 || r.Fault.Retransmissions == 0 {
		t.Fatalf("outages dropped %d flits, %d retransmissions; expected both > 0: %+v",
			r.Fault.FlitsDropped, r.Fault.Retransmissions, r.Fault)
	}
	if r.Delivered == 0 {
		t.Fatal("no packet delivered under transient faults")
	}
}

// TestRetryBudgetExhaustion makes every channel lossy for the whole run
// so cross-layer packets can never complete: each must consume its
// retry budget and be abandoned, with conservation still closing.
func TestRetryBudgetExhaustion(t *testing.T) {
	cfg := hiriseCfg(4, topo.CLRG)
	var outages []fault.Fault
	for cid := 0; cid < cfg.NumL2LC(); cid++ {
		outages = append(outages, fault.Fault{Kind: fault.Channel, ID: cid, Onset: 0, Repair: 1 << 40})
	}
	r := run(t, Config{
		Switch:  hirise(t, 4, topo.CLRG),
		Traffic: traffic.Uniform{Radix: 64},
		Load:    0.3, Warmup: 1000, Measure: 4000, Seed: 11,
		Faults: mustPlan(t, outages...), Check: true, RetryBudget: 2,
	})
	if r.Fault.RetryExhausted == 0 {
		t.Fatalf("permanently lossy channels exhausted no retry budget: %+v", r.Fault)
	}
	if r.Fault.Retransmissions < 2*r.Fault.RetryExhausted {
		t.Fatalf("%d retransmissions for %d exhausted packets; every abandoned packet should have retried twice",
			r.Fault.Retransmissions, r.Fault.RetryExhausted)
	}
	if r.Delivered == 0 {
		t.Fatal("same-layer traffic should still deliver")
	}
}

// TestPermanentChannelFaultsMidRunDrain fails a third of the channels
// mid-run while connections hold them. Fail-stop semantics plus the
// checker's conservation ledger prove every in-flight packet drained:
// nothing is lost, throughput continues on the survivors.
func TestPermanentChannelFaultsMidRunDrain(t *testing.T) {
	cfg := hiriseCfg(4, topo.CLRG)
	var faults []fault.Fault
	for cid := 0; cid < cfg.NumL2LC(); cid += 3 {
		faults = append(faults, fault.Fault{Kind: fault.Channel, ID: cid, Onset: 2000, Repair: -1})
	}
	r := run(t, Config{
		Switch:  hirise(t, 4, topo.CLRG),
		Traffic: traffic.Uniform{Radix: 64},
		Load:    1.0, Warmup: 1000, Measure: 5000, Seed: 11,
		Faults: mustPlan(t, faults...), Check: true,
	})
	if r.Fault.FailEvents == 0 {
		t.Fatalf("no fail event applied: %+v", r.Fault)
	}
	if r.Fault.FlitsDropped != 0 || r.Fault.RetryExhausted != 0 {
		t.Fatalf("fail-stop faults must not lose flits: %+v", r.Fault)
	}
	if r.AcceptedFlits == 0 {
		t.Fatal("switch stopped accepting traffic after channel faults")
	}
}

// TestDeadFlowRetirement fails input and output ports mid-run; packets
// already queued toward a failed output can never be delivered and must
// be retired as dead flows rather than blocking their VCs forever —
// with the ledger still closing around them.
func TestDeadFlowRetirement(t *testing.T) {
	var faults []fault.Fault
	for p := 0; p < 8; p++ {
		faults = append(faults, fault.Fault{Kind: fault.Output, ID: p * 7, Onset: 1500, Repair: -1})
	}
	r := run(t, Config{
		Switch:  hirise(t, 4, topo.CLRG),
		Traffic: traffic.Uniform{Radix: 64},
		Load:    0.9, Warmup: 1000, Measure: 5000, Seed: 11,
		Faults: mustPlan(t, faults...), Check: true, DeadFlowCycles: 256,
	})
	if r.Fault.DeadFlows == 0 {
		t.Fatalf("packets toward failed outputs were never retired: %+v", r.Fault)
	}
}

// TestCrossbarFaultPlane drives the flat crossbar through port and
// crosspoint faults with the checker on: the fault plane is not
// Hi-Rise-specific.
func TestCrossbarFaultPlane(t *testing.T) {
	r := run(t, Config{
		Switch:  crossbar.New(64),
		Traffic: traffic.Uniform{Radix: 64},
		Load:    0.8, Warmup: 1000, Measure: 4000, Seed: 11,
		Faults: mustPlan(t,
			fault.Fault{Kind: fault.Input, ID: 5, Onset: 0, Repair: -1},
			fault.Fault{Kind: fault.Output, ID: 9, Onset: 1200, Repair: -1},
			fault.Fault{Kind: fault.Crosspoint, ID: 3*64 + 17, Onset: 0, Repair: -1},
		),
		Check: true, DeadFlowCycles: 256,
	})
	if r.Fault.FailEvents != 3 {
		t.Fatalf("expected 3 fail events, got %+v", r.Fault)
	}
	if r.Fault.DeadFlows == 0 {
		t.Fatal("packets toward the failed output were never retired")
	}
}

// TestFaultPlaneSteadyStateAllocs extends the steady-state allocation
// pin to the fault-mask path: with the plane active (but the checker
// off — its ledger is allowed to grow), longer runs must not allocate
// more than shorter ones.
func TestFaultPlaneSteadyStateAllocs(t *testing.T) {
	allocs := func(cycles int64) float64 {
		return testing.AllocsPerRun(3, func() {
			plan, err := fault.Spec{
				Seed: 5, Campaign: "alloc", Cfg: hiriseCfg(4, topo.CLRG),
				FailChannels: 8, TransientRate: 0.0005, Horizon: 500 + cycles,
			}.Build()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Run(Config{
				Switch:  hirise(t, 4, topo.CLRG),
				Traffic: traffic.Uniform{Radix: 64},
				Load:    0.3, Warmup: 500, Measure: cycles, Seed: 7,
				Faults: plan,
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
	short, long := allocs(2000), allocs(8000)
	// The longer horizon schedules more transient outages, so allow the
	// plan/injector setup difference, but nothing per-cycle: a per-cycle
	// leak shows up as thousands of extra allocations.
	if long > short+64 {
		t.Errorf("6000 extra cycles allocated %.0f extra times (%.0f -> %.0f); fault path allocates per cycle",
			long-short, short, long)
	}
}

// TestCheckerCatchesFailedResourceGrant wires a switch that ignores
// fault masking and asserts the invariant checker actually fires — the
// self-checking layer must not be a rubber stamp.
func TestCheckerCatchesFailedResourceGrant(t *testing.T) {
	sw := &negligentSwitch{inner: crossbar.New(8)}
	_, err := Run(Config{
		Switch:  sw,
		Traffic: traffic.Uniform{Radix: 8},
		Load:    1.0, Warmup: 0, Measure: 1000, Seed: 3,
		Faults: mustPlan(t, fault.Fault{Kind: fault.Input, ID: 2, Onset: 0, Repair: -1}),
		Check:  true,
	})
	if err == nil {
		t.Fatal("checker accepted a grant on a failed input")
	}
}

// negligentSwitch accepts FailInput but keeps granting the failed input
// anyway — a deliberately buggy switch for checker coverage.
type negligentSwitch struct {
	inner  *crossbar.Switch
	failed map[int]bool
}

func (n *negligentSwitch) Radix() int { return n.inner.Radix() }
func (n *negligentSwitch) Arbitrate(req []int) []topo.Grant {
	return n.inner.Arbitrate(req)
}
func (n *negligentSwitch) Release(in int) { n.inner.Release(in) }
func (n *negligentSwitch) FailInput(in int) error {
	if n.failed == nil {
		n.failed = map[int]bool{}
	}
	n.failed[in] = true
	return nil
}
func (n *negligentSwitch) RestoreInput(in int) error   { delete(n.failed, in); return nil }
func (n *negligentSwitch) FailOutput(out int) error    { return nil }
func (n *negligentSwitch) RestoreOutput(out int) error { return nil }
func (n *negligentSwitch) InputFailed(in int) bool     { return n.failed[in] }
func (n *negligentSwitch) OutputFailed(out int) bool   { return false }
