package sim

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/reprolab/hirise/internal/obs"
	"github.com/reprolab/hirise/internal/topo"
	"github.com/reprolab/hirise/internal/traffic"
)

// observedSweep runs a hotspot CLRG sweep with per-point observers at
// the given worker count and returns the serialized JSONL trace, Chrome
// trace, and metrics dump.
func observedSweep(t *testing.T, workers int) (jsonl, chrome, metrics []byte) {
	t.Helper()
	loads := []float64{0.02, 0.05, 0.1}
	observers := make([]*obs.Observer, len(loads))
	for i := range observers {
		observers[i] = &obs.Observer{
			Metrics:  obs.NewRegistry(),
			Trace:    obs.NewRecorder(0),
			Fairness: obs.NewFairnessAudit(64, 3),
		}
	}
	base := Config{
		Traffic: traffic.Hotspot{Target: 0},
		Warmup:  500, Measure: 2000, Seed: 11,
	}
	_, err := LoadSweepObserved(base,
		func() Switch { return hirise(t, 4, topo.CLRG) },
		nil, loads, workers,
		func(i int) *obs.Observer { return observers[i] })
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]*obs.Recorder, len(observers))
	regs := make([]*obs.Registry, len(observers))
	for i, o := range observers {
		recs[i], regs[i] = o.Trace, o.Metrics
	}
	var jb, cb, mb bytes.Buffer
	if err := obs.WriteJSONL(&jb, recs); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteChromeTrace(&cb, recs); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteRegistriesJSON(&mb, regs); err != nil {
		t.Fatal(err)
	}
	return jb.Bytes(), cb.Bytes(), mb.Bytes()
}

// TestTraceWorkerCountInvariance is the tentpole's determinism
// contract: every serialized observability artifact is byte-identical
// whether the sweep ran serial or parallel.
func TestTraceWorkerCountInvariance(t *testing.T) {
	j1, c1, m1 := observedSweep(t, 1)
	j4, c4, m4 := observedSweep(t, 4)
	if !bytes.Equal(j1, j4) {
		t.Error("JSONL trace differs between 1 and 4 workers")
	}
	if !bytes.Equal(c1, c4) {
		t.Error("Chrome trace differs between 1 and 4 workers")
	}
	if !bytes.Equal(m1, m4) {
		t.Error("metrics dump differs between 1 and 4 workers")
	}
	if n, err := obs.ValidateJSONL(bytes.NewReader(j1)); err != nil || n == 0 {
		t.Errorf("JSONL invalid or empty: n=%d err=%v", n, err)
	}
	if n, err := obs.ValidateChromeTrace(c1); err != nil || n == 0 {
		t.Errorf("Chrome trace invalid or empty: n=%d err=%v", n, err)
	}
}

// TestObservationDoesNotPerturbResults: attaching every sink must leave
// the simulation's measurements bit-identical — observability reads the
// simulation, never steers it.
func TestObservationDoesNotPerturbResults(t *testing.T) {
	mk := func(o *obs.Observer) Result {
		cfg := Config{
			Switch:  hirise(t, 4, topo.CLRG),
			Traffic: traffic.Uniform{Radix: 64},
			Load:    0.2, Warmup: 500, Measure: 2000, Seed: 3, Obs: o,
		}
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	plain := mk(nil)
	observed := mk(&obs.Observer{
		Metrics:  obs.NewRegistry(),
		Trace:    obs.NewRecorder(0),
		Fairness: obs.NewFairnessAudit(64, 3),
	})
	if !reflect.DeepEqual(plain, observed) {
		t.Fatalf("results differ with observer attached:\n%+v\n%+v", plain, observed)
	}
}

// TestObservedMetricsConsistent cross-checks the metrics registry
// against the simulator's own accounting: whole-run counters must be at
// least the measurement-window counts, and every lifecycle invariant
// must hold.
func TestObservedMetricsConsistent(t *testing.T) {
	o := &obs.Observer{
		Metrics:  obs.NewRegistry(),
		Trace:    obs.NewRecorder(0),
		Fairness: obs.NewFairnessAudit(64, 3),
	}
	cfg := Config{
		Switch:  hirise(t, 4, topo.CLRG),
		Traffic: traffic.Uniform{Radix: 64},
		Load:    0.3, PacketFlits: 4, Warmup: 500, Measure: 2000, Seed: 5, Obs: o,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inj := o.Counter("sim.packets.injected").Value()
	del := o.Counter("sim.packets.delivered").Value()
	if inj < res.Injected || del < res.Delivered {
		t.Errorf("whole-run counters (%d inj, %d del) below measurement window (%d, %d)",
			inj, del, res.Injected, res.Delivered)
	}
	if del > inj {
		t.Errorf("delivered %d > injected %d", del, inj)
	}
	if flits := o.Counter("sim.flits.delivered").Value(); flits != del*int64(cfg.PacketFlits) {
		t.Errorf("flits %d != delivered %d * %d", flits, del, cfg.PacketFlits)
	}
	if lat := o.Histogram("sim.latency.cycles", 4, 4096); lat.Count() != del {
		t.Errorf("latency observations %d != deliveries %d", lat.Count(), del)
	}
	// Every delivered packet won an arbitration round exactly once.
	if wins := o.Counter("sim.arb.wins").Value(); wins < del {
		t.Errorf("wins %d < deliveries %d", wins, del)
	}
	// Trace events mirror the counters.
	var ejects int64
	for _, e := range o.Rec().Events() {
		if e.Kind == obs.EvEject {
			ejects++
		}
	}
	if o.Rec().Dropped() == 0 && ejects != del {
		t.Errorf("%d eject events, %d delivered packets", ejects, del)
	}
	// The audit saw real contention under uniform load.
	rep := o.Audit().Report()
	if rep.TotalRequests == 0 || rep.TotalWins == 0 {
		t.Errorf("audit empty: %+v", rep)
	}
	if rep.TotalWins > rep.TotalRequests {
		t.Errorf("wins %d > requests %d", rep.TotalWins, rep.TotalRequests)
	}
}
