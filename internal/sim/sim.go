// Package sim is the cycle-accurate, flit-level network simulator used to
// evaluate every switch configuration (paper §V). It models the paper's
// setup: 4 virtual channels per input port with a buffer depth of 4 flits
// each, 128-bit flits, 4-flit packets, and open-loop injection from a
// finite source queue.
//
// Timing follows the Swizzle-Switch connection lifecycle: the output bus
// doubles as the priority bus, so a packet costs one arbitration cycle
// plus PacketFlits data cycles of output occupancy; peak utilization is
// PacketFlits/(PacketFlits+1) flits per cycle per port. The simulator
// counts in switch cycles — internal/phys converts to nanoseconds and
// Tbps at each configuration's clock.
package sim

import (
	"context"
	"fmt"

	"github.com/reprolab/hirise/internal/fault"
	"github.com/reprolab/hirise/internal/obs"
	"github.com/reprolab/hirise/internal/pool"
	"github.com/reprolab/hirise/internal/prng"
	"github.com/reprolab/hirise/internal/stats"
	"github.com/reprolab/hirise/internal/tele"
	"github.com/reprolab/hirise/internal/topo"
)

// Switch is the arbitration-and-connection view the simulator drives; it
// is implemented by crossbar.Switch (2D, folded) and core.Switch
// (Hi-Rise).
type Switch interface {
	// Radix returns the port count.
	Radix() int
	// Arbitrate runs one arbitration cycle over the per-input requested
	// outputs (-1 for none) and returns the connections formed.
	Arbitrate(req []int) []topo.Grant
	// Release frees the connection held by an input after its last flit.
	Release(in int)
}

// Traffic produces the offered load. Implementations live in
// internal/traffic.
type Traffic interface {
	// Next reports whether input injects a new packet this cycle at the
	// given offered load (packets/cycle/input) and, if so, its
	// destination output. rng is the input's private stream.
	Next(input int, cycle int64, load float64, rng *prng.Source) (dest int, inject bool)
}

// Config parameterizes one simulation run.
type Config struct {
	Switch  Switch
	Traffic Traffic
	// Load is the offered load in packets per cycle per input.
	Load float64
	// PacketFlits is the packet length (paper: 4 flits of 128 bits).
	PacketFlits int
	// VCs is the number of virtual channels per input (paper: 4), each
	// holding one packet (depth 4 flits).
	VCs int
	// SourceQueueCap bounds the per-input injection queue; injections
	// arriving at a full queue are counted and discarded, which caps
	// offered load at the port's acceptance rate past saturation.
	SourceQueueCap int
	// Warmup and Measure are the lengths, in cycles, of the warmup and
	// measurement windows.
	Warmup, Measure int64
	// Seed drives all stochastic choices.
	Seed uint64
	// Ctx, when non-nil, makes the run cancellable: the main loop polls
	// Ctx every ctxCheckInterval simulated cycles and Run returns the
	// ctx error instead of a Result. The poll sits outside the per-port
	// hot loops, so a nil Ctx (the default) costs one comparison per
	// cycle and the simulated behaviour is byte-identical either way.
	Ctx context.Context
	// Obs, when non-nil, attaches observability sinks (internal/obs):
	// the trace recorder sees every flit lifecycle event, the metrics
	// registry accumulates sim.* counters and the latency histogram, and
	// the fairness audit is handed to the switch if it implements
	// SetObserver. Unlike Result, which covers only the measurement
	// window, obs sinks cover the entire run including warmup — they
	// observe the simulation, not the experiment. A nil Obs (the
	// default) is free: no hook allocates or branches beyond a nil
	// check. Results and stdout are byte-identical either way.
	Obs *obs.Observer
	// Faults, when non-nil and non-empty, attaches the fault plane
	// (internal/fault): fail-stop events are applied to the switch
	// cycle by cycle and lossy channel outages drop the flits crossing
	// them, recovered by the source-side retransmission protocol. A nil
	// or empty plan costs nothing: the run is byte-identical to one
	// without the field. Plans are immutable and may be shared across
	// concurrent runs.
	Faults *fault.Plan
	// RetryBudget caps source-side retransmissions per packet after
	// lossy-link corruption. 0 selects the default (3); negative
	// disables retransmission (a corrupted packet is abandoned at its
	// first failed delivery).
	RetryBudget int
	// DeadFlowCycles is the age after which a queued packet whose every
	// path to its destination is failed (Switch.PathBlocked) is retired
	// as a dead flow instead of head-of-line blocking its VC forever.
	// 0 selects the default (512). The age guard keeps flows alive
	// across transient outages that heal.
	DeadFlowCycles int64
	// Check enables the self-checking invariant layer: no grant ever
	// lands on a failed resource, no packet is delivered twice, and at
	// end of run every injected packet is accounted for (delivered,
	// still queued or in flight, retry-exhausted, or a dead flow). Run
	// returns an error on the first violation. It observes the run
	// without changing it; tests keep it always on.
	Check bool
	// ConvergeStop lets the run end before Warmup+Measure: once the
	// telemetry sampler's MSER steady-state detector declares the
	// delivered-packet series converged — checked at window closes,
	// after at least Warmup + Measure/8 cycles and convergeMinWindows
	// closed windows — the run stops at that window boundary and all
	// rates are normalized by the cycles actually measured. The
	// decision depends only on this run's own series, so sweeps remain
	// deterministic at any worker count (though early-stopped results
	// differ from full-length ones — the flag is part of experiment
	// cache keys). When no sampler is attached via Obs, a private one
	// with default cadence is created.
	ConvergeStop bool
}

// Defaults fills unset fields with the paper's parameters. Zero means
// "unset" for every field, so explicit zeroes are indistinguishable from
// defaults: in particular Seed 0 is silently remapped to 1 (seeds 0 and
// 1 therefore run the exact same streams), and Warmup 0 becomes the
// default 10000-cycle window. Callers that need a different fidelity
// must pass nonzero values.
func (c *Config) Defaults() {
	if c.PacketFlits == 0 {
		c.PacketFlits = 4
	}
	if c.VCs == 0 {
		c.VCs = 4
	}
	if c.SourceQueueCap == 0 {
		c.SourceQueueCap = 64
	}
	if c.Warmup == 0 {
		c.Warmup = 10000
	}
	if c.Measure == 0 {
		c.Measure = 50000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

func (c *Config) validate() error {
	switch {
	case c.Switch == nil:
		return fmt.Errorf("sim: no switch")
	case c.Traffic == nil:
		return fmt.Errorf("sim: no traffic")
	case c.Load < 0:
		return fmt.Errorf("sim: negative load %v", c.Load)
	case c.PacketFlits < 1 || c.VCs < 1 || c.SourceQueueCap < 1:
		return fmt.Errorf("sim: non-positive structural parameter")
	case c.Warmup < 0 || c.Measure <= 0:
		return fmt.Errorf("sim: bad windows warmup=%d measure=%d", c.Warmup, c.Measure)
	}
	return nil
}

// Result aggregates one run's measurements. All rates are per switch
// cycle; all latencies are in cycles.
type Result struct {
	// OfferedLoad echoes the configured load.
	OfferedLoad float64
	// AcceptedFlits is the aggregate delivered flit rate (flits/cycle).
	AcceptedFlits float64
	// AcceptedPackets is the aggregate delivered packet rate.
	AcceptedPackets float64
	// AvgLatency is the mean packet latency, injection to last flit.
	AvgLatency float64
	// P50Latency and P99Latency are latency quantiles.
	P50Latency, P99Latency float64
	// PerInputLatency is the mean latency per source input (NaN-free:
	// inputs that delivered nothing report 0).
	PerInputLatency []float64
	// PerInputPackets is the delivered packet rate per source input.
	PerInputPackets []float64
	// Injected and Delivered count packets during measurement.
	Injected, Delivered int64
	// DroppedInjections counts packets discarded at full source queues
	// during measurement; nonzero means the port is saturated.
	DroppedInjections int64
	// Fault aggregates the fault plane's activity over the whole run;
	// nil when the run had no fault plane, so fault-free results
	// serialize exactly as before.
	Fault *FaultStats `json:",omitempty"`
	// Converged reports the MSER steady-state detector's verdict on
	// the delivered-packet series. Only set when a telemetry sampler
	// was attached (Config.Obs.Tele or ConvergeStop), and omitted from
	// JSON otherwise, so telemetry-free results serialize exactly as
	// before.
	Converged bool `json:",omitempty"`
	// WarmupCycles is the detector's suggested warmup truncation in
	// cycles from run start (the MSER cut × the sampler window); 0
	// when not converged or not sampled.
	WarmupCycles int64 `json:",omitempty"`
}

// Saturated reports whether offered traffic exceeded what the switch
// accepted.
func (r Result) Saturated() bool { return r.DroppedInjections > 0 }

// ctxCheckInterval is how often (in simulated cycles) a cancellable run
// polls its context. Polling a cancel context takes a mutex, so the
// interval trades shutdown latency (≤ interval cycles, microseconds of
// wall time) against hot-loop overhead; 1024 makes the check unmeasurable
// while still stopping a cancelled run long before one sweep point ends.
const ctxCheckInterval = 1024

// teleDeliveredSeries is the telemetry series the MSER steady-state
// detector judges: delivered packets per window, switch-wide.
const teleDeliveredSeries = "sim.packets.delivered"

// convergeMinWindows is the fewest closed telemetry windows a
// ConvergeStop run must accumulate before the detector may end it;
// together with the Warmup + Measure/8 cycle floor it keeps the
// detector from declaring victory on a handful of samples.
const convergeMinWindows = 16

type packet struct {
	birth int64
	dest  int
	seq   int64 // per-input injection sequence number (invariant checker)
	// retries counts the retransmissions this packet has consumed
	// recovering from lossy-link corruption.
	retries int
}

// fifo is a fixed-capacity ring buffer of packets. The source queue
// needs bounded FIFO semantics only; a ring keeps the whole run on one
// allocation, where a rolling slice (q = q[1:] plus append) re-allocates
// every time the live window drifts off the end of its backing array.
type fifo struct {
	buf  []packet
	head int
	n    int
}

func (q *fifo) full() bool { return q.n == len(q.buf) }

func (q *fifo) push(p packet) {
	i := q.head + q.n
	if i >= len(q.buf) {
		i -= len(q.buf)
	}
	q.buf[i] = p
	q.n++
}

func (q *fifo) pop() packet {
	p := q.buf[q.head]
	if q.head++; q.head == len(q.buf) {
		q.head = 0
	}
	q.n--
	return p
}

type port struct {
	rng  *prng.Source
	srcQ fifo     // FIFO, bounded by SourceQueueCap
	vc   []packet // one packet per occupied VC
	vcOk []bool
	rr   int // round-robin VC pointer
	// Active connection, if any.
	connected bool
	connVC    int
	remaining int
	// corrupt marks the active transmission as having lost at least one
	// flit to a lossy channel outage; the source detects it when the
	// last flit completes and retransmits or abandons.
	corrupt bool
	// nextSeq numbers this input's injections.
	nextSeq int64
}

// Run executes one simulation and returns its measurements.
func Run(cfg Config) (Result, error) {
	cfg.Defaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	n := cfg.Switch.Radix()
	if cfg.Obs != nil {
		if sw, ok := cfg.Switch.(interface{ SetObserver(*obs.Observer) }); ok {
			sw.SetObserver(cfg.Obs)
		}
	}
	// All handles below are nil when cfg.Obs is nil (or lacks the sink);
	// their methods no-op on nil receivers, so the disabled path costs
	// one nil check per hook and never allocates.
	rec := cfg.Obs.Rec()
	mInjected := cfg.Obs.Counter("sim.packets.injected")
	mDelivered := cfg.Obs.Counter("sim.packets.delivered")
	mDropped := cfg.Obs.Counter("sim.packets.dropped")
	mFlits := cfg.Obs.Counter("sim.flits.delivered")
	mWins := cfg.Obs.Counter("sim.arb.wins")
	mLosses := cfg.Obs.Counter("sim.arb.losses")
	mLatency := cfg.Obs.Histogram("sim.latency.cycles", 4, 4096)
	cfg.Obs.Gauge("sim.offered.load").Set(cfg.Load)

	// Telemetry plane: windowed time-series tracks over the whole run.
	// The sampler is nil unless attached via Obs (or implied by
	// ConvergeStop), and every tele handle no-ops on nil, so the
	// disabled path costs one nil check per hook like the obs sinks.
	samp := cfg.Obs.Sampler()
	if samp == nil && cfg.ConvergeStop {
		samp = tele.NewSampler(0, 0)
	}
	tInjected := samp.Counter("sim.packets.injected")
	tDelivered := samp.Counter(teleDeliveredSeries)
	tDropped := samp.Counter("sim.packets.dropped")
	tFlits := samp.Counter("sim.flits.delivered")
	tWins := samp.Counter("sim.arb.wins")
	tLosses := samp.Counter("sim.arb.losses")

	// Fault plane. Everything below is nil/false when the plan is empty,
	// so the fault-free run stays on the exact pre-fault hot path (and
	// registers no fault counters, keeping metrics output unchanged).
	hasFaults := !cfg.Faults.Empty()
	var inj *fault.Injector
	var holder channelHolder
	var blocker pathBlocker
	var mFlitDrop, mRetrans, mRetryDrop, mDeadFlow, mFailEv, mRepairEv *obs.Counter
	var tFlitDrop, tRetrans, tRetryDrop, tDeadFlow, tFailEv, tRepairEv *tele.Counter
	if hasFaults {
		inj = fault.NewInjector(cfg.Faults, cfg.Switch)
		holder, _ = cfg.Switch.(channelHolder)
		blocker, _ = cfg.Switch.(pathBlocker)
		mFlitDrop = cfg.Obs.Counter("sim.fault.flits_dropped")
		mRetrans = cfg.Obs.Counter("sim.fault.retransmissions")
		mRetryDrop = cfg.Obs.Counter("sim.fault.retry_exhausted")
		mDeadFlow = cfg.Obs.Counter("sim.fault.dead_flows")
		mFailEv = cfg.Obs.Counter("sim.fault.fail_events")
		mRepairEv = cfg.Obs.Counter("sim.fault.repair_events")
		tFlitDrop = samp.Counter("sim.fault.flits_dropped")
		tRetrans = samp.Counter("sim.fault.retransmissions")
		tRetryDrop = samp.Counter("sim.fault.retry_exhausted")
		tDeadFlow = samp.Counter("sim.fault.dead_flows")
		tFailEv = samp.Counter("sim.fault.fail_events")
		tRepairEv = samp.Counter("sim.fault.repair_events")
		inj.Hook = func(cycle int64, f fault.Fault, repair bool) {
			if repair {
				mRepairEv.Inc()
				tRepairEv.Inc()
				rec.Record(cycle, obs.EvRepair, f.ID, -1, int(f.Kind))
				return
			}
			mFailEv.Inc()
			tFailEv.Inc()
			rec.Record(cycle, obs.EvFault, f.ID, -1, int(f.Kind))
		}
	}
	lossy := inj != nil && inj.HasLossy() && holder != nil
	retryBudget := cfg.RetryBudget
	switch {
	case retryBudget == 0:
		retryBudget = 3
	case retryBudget < 0:
		retryBudget = 0
	}
	deadAfter := cfg.DeadFlowCycles
	if deadAfter == 0 {
		deadAfter = 512
	}
	var chk *checker
	if cfg.Check {
		chk = newChecker(cfg.Switch, n)
	}
	var fstats FaultStats

	root := prng.New(cfg.Seed)
	ports := make([]port, n)
	for i := range ports {
		ports[i] = port{
			rng:  root.Split(),
			srcQ: fifo{buf: make([]packet, cfg.SourceQueueCap)},
			vc:   make([]packet, cfg.VCs),
			vcOk: make([]bool, cfg.VCs),
		}
	}

	if samp != nil {
		// Level tracks, snapshotted at each window close: total packets
		// waiting in source queues + VCs, and flits still crossing the
		// switch on active connections.
		samp.GaugeFunc("sim.queue.occupancy", func() float64 {
			var occ int
			for in := range ports {
				occ += ports[in].srcQ.n
				for _, ok := range ports[in].vcOk {
					if ok {
						occ++
					}
				}
			}
			return float64(occ)
		})
		samp.GaugeFunc("sim.flits.inflight", func() float64 {
			var fl int
			for in := range ports {
				if ports[in].connected {
					fl += ports[in].remaining
				}
			}
			return float64(fl)
		})
	}

	req := make([]int, n)
	hist := stats.NewHistogram(4, 4096)
	perLat := stats.NewPerPort(n)
	perPkt := make([]int64, n)
	var injected, delivered, dropped, flits int64
	releases := make([]int, 0, n)

	total := cfg.Warmup + cfg.Measure
	var stoppedAt int64 // cycle count at a ConvergeStop early exit, 0 = ran full length
	for cycle := int64(0); cycle < total; cycle++ {
		if cfg.Ctx != nil && cycle%ctxCheckInterval == 0 && cfg.Ctx.Err() != nil {
			return Result{}, fmt.Errorf("sim: run cancelled at cycle %d: %w", cycle, cfg.Ctx.Err())
		}
		measuring := cycle >= cfg.Warmup

		// 0. Apply this cycle's fault events before anything arbitrates:
		// a resource failed at cycle t is masked from cycle t's grants,
		// and a lossy outage spanning [onset, repair) corrupts cycle t's
		// flits.
		if inj != nil {
			inj.Advance(cycle)
		}

		// 1. Advance active transmissions; deliveries complete here but
		// resources release only after this cycle's arbitration, matching
		// the priority-bus reuse (arbitration cannot overlap data on the
		// same output).
		releases = releases[:0]
		for in := range ports {
			p := &ports[in]
			if !p.connected {
				continue
			}
			if lossy {
				// A flit crossing an L2LC inside a lossy outage is lost;
				// the connection keeps transmitting (the source has not
				// noticed yet), but the packet is now corrupt.
				if cid := holder.HeldChannel(in); cid >= 0 && inj.Lossy(cid) {
					p.corrupt = true
					fstats.FlitsDropped++
					mFlitDrop.Inc()
					tFlitDrop.Inc()
					rec.Record(cycle, obs.EvFlitDrop, in, p.vc[p.connVC].dest, cid)
				}
			}
			p.remaining--
			if p.remaining > 0 {
				continue
			}
			if p.corrupt {
				// Last flit of a corrupted packet: the destination cannot
				// reassemble it, the source detects the loss one
				// packet-time after transmission started (its implicit
				// timeout) and either retransmits from the still-occupied
				// VC or abandons the packet.
				pkt := &p.vc[p.connVC]
				p.corrupt = false
				p.connected = false
				releases = append(releases, in)
				if pkt.retries >= retryBudget {
					p.vcOk[p.connVC] = false
					fstats.RetryExhausted++
					mRetryDrop.Inc()
					tRetryDrop.Inc()
					rec.Record(cycle, obs.EvRetryDrop, in, pkt.dest, pkt.retries)
				} else {
					pkt.retries++
					fstats.Retransmissions++
					mRetrans.Inc()
					tRetrans.Inc()
					rec.Record(cycle, obs.EvRetransmit, in, pkt.dest, pkt.retries)
				}
				continue
			}
			pkt := p.vc[p.connVC]
			lat := cycle - pkt.birth
			if measuring {
				hist.Add(float64(lat))
				perLat.Add(in, float64(lat))
				perPkt[in]++
				delivered++
				flits += int64(cfg.PacketFlits)
			}
			mDelivered.Inc()
			mFlits.Add(int64(cfg.PacketFlits))
			tDelivered.Inc()
			tFlits.Add(int64(cfg.PacketFlits))
			mLatency.Observe(float64(lat))
			rec.Record(cycle, obs.EvEject, in, pkt.dest, int(lat))
			if chk != nil {
				if err := chk.recordDelivery(cycle, in, pkt.seq); err != nil {
					return Result{}, err
				}
			}
			p.vcOk[p.connVC] = false
			p.connected = false
			releases = append(releases, in)
		}

		// 2. Build requests from unconnected inputs with waiting packets,
		// selecting the candidate VC round-robin.
		for in := range ports {
			p := &ports[in]
			req[in] = -1
			if p.connected {
				continue
			}
			for k := 0; k < cfg.VCs; k++ {
				v := (p.rr + k) % cfg.VCs
				if !p.vcOk[v] {
					continue
				}
				if hasFaults && blocker != nil && cycle-p.vc[v].birth >= deadAfter && blocker.PathBlocked(in, p.vc[v].dest) {
					// Dead flow: the packet has waited past the dead-flow
					// age and every path to its destination is failed, so
					// it can never be delivered. Retire it instead of
					// head-of-line blocking the VC forever.
					p.vcOk[v] = false
					fstats.DeadFlows++
					mDeadFlow.Inc()
					tDeadFlow.Inc()
					rec.Record(cycle, obs.EvDeadFlow, in, p.vc[v].dest, int(cycle-p.vc[v].birth))
					continue
				}
				p.rr = (v + 1) % cfg.VCs
				req[in] = p.vc[v].dest
				p.connVC = v
				break
			}
		}

		// 3. Arbitrate and start new connections (flits flow on the
		// following cycles).
		for _, g := range cfg.Switch.Arbitrate(req) {
			if chk != nil {
				if err := chk.checkGrant(cycle, g.In, g.Out); err != nil {
					return Result{}, err
				}
			}
			p := &ports[g.In]
			p.connected = true
			p.remaining = cfg.PacketFlits
			mWins.Inc()
			tWins.Inc()
			rec.Record(cycle, obs.EvArbWin, g.In, g.Out, cfg.PacketFlits)
		}
		if cfg.Obs != nil || samp != nil {
			// A requesting input left unconnected lost its arbitration
			// round (to a contender, a busy output, or a busy channel).
			for in := range ports {
				if req[in] >= 0 && !ports[in].connected {
					mLosses.Inc()
					tLosses.Inc()
					rec.Record(cycle, obs.EvArbLose, in, req[in], 0)
				}
			}
		}

		// 4. Release the connections that finished this cycle.
		for _, in := range releases {
			cfg.Switch.Release(in)
		}

		// 5. Inject new packets and refill VCs from the source queue.
		for in := range ports {
			p := &ports[in]
			if dest, ok := cfg.Traffic.Next(in, cycle, cfg.Load, p.rng); ok {
				if p.srcQ.full() {
					if measuring {
						dropped++
					}
					mDropped.Inc()
					tDropped.Inc()
					rec.Record(cycle, obs.EvDrop, in, dest, 0)
				} else {
					p.srcQ.push(packet{birth: cycle, dest: dest, seq: p.nextSeq})
					p.nextSeq++
					if measuring {
						injected++
					}
					if chk != nil {
						chk.injected++
					}
					mInjected.Inc()
					tInjected.Inc()
					rec.Record(cycle, obs.EvInject, in, dest, 0)
				}
			}
			for v := 0; v < cfg.VCs && p.srcQ.n > 0; v++ {
				if !p.vcOk[v] {
					p.vc[v] = p.srcQ.pop()
					p.vcOk[v] = true
					rec.Record(cycle, obs.EvVCAlloc, in, p.vc[v].dest, v)
				}
			}
		}

		// 6. Close the telemetry window when its cadence is due (a
		// single compare when telemetry is off or mid-window) and, under
		// ConvergeStop, consult the steady-state detector at each close.
		if samp.Tick(cycle+1) && cfg.ConvergeStop &&
			cycle+1 >= cfg.Warmup+(cfg.Measure+7)/8 &&
			samp.Windows() >= convergeMinWindows {
			if _, ok := tele.MSER(samp.Values(teleDeliveredSeries)); ok {
				stoppedAt = cycle + 1
				break
			}
		}
	}

	// An early-stopped run measured fewer cycles than configured; rates
	// normalize by what actually ran so they stay comparable.
	measured := float64(cfg.Measure)
	if stoppedAt > 0 {
		measured = float64(stoppedAt - cfg.Warmup)
	}
	res := Result{
		OfferedLoad:       cfg.Load,
		AcceptedFlits:     float64(flits) / measured,
		AcceptedPackets:   float64(delivered) / measured,
		AvgLatency:        hist.Mean(),
		P50Latency:        hist.Quantile(0.5),
		P99Latency:        hist.Quantile(0.99),
		PerInputLatency:   perLat.Means(),
		PerInputPackets:   make([]float64, n),
		Injected:          injected,
		Delivered:         delivered,
		DroppedInjections: dropped,
	}
	for i, c := range perPkt {
		res.PerInputPackets[i] = float64(c) / measured
	}
	if samp != nil {
		cut, conv := tele.MSER(samp.Values(teleDeliveredSeries))
		res.Converged = conv
		if conv {
			res.WarmupCycles = int64(cut) * samp.Window()
		}
	}
	if hasFaults {
		ist := inj.Stats()
		fstats.FailEvents = ist.FailEvents
		fstats.RepairEvents = ist.RepairEvents
		fstats.SkippedEvents = ist.Skipped
		res.Fault = &fstats
	}
	if chk != nil {
		var inFlight int64
		for in := range ports {
			inFlight += int64(ports[in].srcQ.n)
			for _, ok := range ports[in].vcOk {
				if ok {
					inFlight++
				}
			}
		}
		if err := chk.conservation(inFlight, fstats); err != nil {
			return Result{}, err
		}
	}
	return res, nil
}

// SaturationThroughput runs the switch fully backlogged (load 1.0) and
// returns the accepted flit rate per cycle — the saturation throughput
// the paper's tables report, before conversion to Tbps.
func SaturationThroughput(cfg Config) (float64, error) {
	cfg.Load = 1.0
	res, err := Run(cfg)
	if err != nil {
		return 0, err
	}
	return res.AcceptedFlits, nil
}

// LoadSweep runs the configuration at each load on at most workers
// concurrent simulations (0 selects runtime.GOMAXPROCS(0), 1 forces
// serial) and returns the results in load order. Each point gets a
// fresh switch from newSwitch to avoid state leakage, and derives its
// own PRNG seed from (base.Seed, point index) via pool.SeedFor, so the
// sweep's results are identical at every worker count. newTraffic, when
// non-nil, supplies each point its own traffic pattern; it must be
// non-nil for stateful patterns (e.g. traffic.Bursty), which can be
// shared neither between concurrent points nor across sequential ones.
// The first error by point index wins, mirroring serial execution.
func LoadSweep(base Config, newSwitch func() Switch, newTraffic func() Traffic, loads []float64, workers int) ([]Result, error) {
	return LoadSweepObserved(base, newSwitch, newTraffic, loads, workers, nil)
}

// LoadSweepObserved is LoadSweep with per-point observability: when
// obsFor is non-nil it is called once per point, before the point runs,
// and must return the observer for that point (or nil to leave the
// point unobserved). Each point needs its own observer because points
// run concurrently and obs sinks are single-writer; callers merge the
// per-point sinks in point order afterwards (obs.WriteJSONL and friends
// take the slice), which keeps every serialized trace byte-identical at
// any worker count. obsFor itself may be called from worker goroutines
// and must be safe for concurrent use; returning independent,
// preallocated observers from a slice is the intended pattern.
// A non-nil base.Ctx makes the sweep cancellable: pending points are
// skipped and in-flight points abort at their next cycle-level check, so
// the whole sweep unwinds within roughly one check interval. The ctx
// error is returned and any partial results are discarded.
func LoadSweepObserved(base Config, newSwitch func() Switch, newTraffic func() Traffic, loads []float64, workers int, obsFor func(i int) *obs.Observer) ([]Result, error) {
	out := make([]Result, len(loads))
	errs := make([]error, len(loads))
	pool.DoCtx(base.Ctx, len(loads), workers, func(i int) {
		cfg := base
		cfg.Switch = newSwitch()
		if newTraffic != nil {
			cfg.Traffic = newTraffic()
		}
		if obsFor != nil {
			cfg.Obs = obsFor(i)
		}
		cfg.Load = loads[i]
		cfg.Seed = pool.SeedFor(base.Seed, uint64(i))
		out[i], errs[i] = Run(cfg)
	})
	if base.Ctx != nil && base.Ctx.Err() != nil {
		return nil, base.Ctx.Err()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
