package sim

import (
	"math"
	"reflect"
	"testing"

	"github.com/reprolab/hirise/internal/core"
	"github.com/reprolab/hirise/internal/crossbar"
	"github.com/reprolab/hirise/internal/topo"
	"github.com/reprolab/hirise/internal/traffic"
)

func hirise(t testing.TB, channels int, scheme topo.Scheme) *core.Switch {
	t.Helper()
	s, err := core.New(topo.Config{
		Radix: 64, Layers: 4, Channels: channels,
		Alloc: topo.InputBinned, Scheme: scheme, Classes: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func run(t testing.TB, cfg Config) Result {
	t.Helper()
	if cfg.Warmup == 0 {
		cfg.Warmup = 3000
	}
	if cfg.Measure == 0 {
		cfg.Measure = 15000
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestZeroLoadLatencyIsPipelineDepth(t *testing.T) {
	// At very low load a packet sees: inject, arbitrate next cycle, then
	// 4 flit cycles -> 5 cycles end to end.
	r := run(t, Config{
		Switch:  crossbar.New(64),
		Traffic: traffic.Uniform{Radix: 64},
		Load:    0.001,
	})
	if math.Abs(r.AvgLatency-5) > 0.2 {
		t.Errorf("zero-load latency %.2f cycles, want ~5", r.AvgLatency)
	}
}

func TestPermutationReachesPeakUtilization(t *testing.T) {
	// A permutation is contention-free on a flat crossbar; each port must
	// sustain PacketFlits/(PacketFlits+1) = 0.8 flits/cycle.
	r := run(t, Config{
		Switch:  crossbar.New(64),
		Traffic: traffic.NewRandomPermutation(64, 9),
		Load:    1.0,
	})
	perPort := r.AcceptedFlits / 64
	if math.Abs(perPort-0.8) > 0.01 {
		t.Errorf("per-port utilization %.3f, want 0.8", perPort)
	}
}

func TestUniformSaturation2D(t *testing.T) {
	// Uniform random on the 2D switch: output contention keeps saturation
	// meaningfully below peak but well above half.
	flits, err := SaturationThroughput(Config{
		Switch:  crossbar.New(64),
		Traffic: traffic.Uniform{Radix: 64},
		Warmup:  3000, Measure: 15000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if util := flits / 64; util < 0.5 || util > 0.8 {
		t.Errorf("2D UR saturation utilization %.3f, want in (0.5, 0.8)", util)
	}
}

func TestChannelMultiplicityOrdersThroughput(t *testing.T) {
	// Paper Table IV: UR saturation rises with channel multiplicity, and
	// 1-channel is bottlenecked near its L2LC bound of 0.25 flits/cycle
	// per port.
	sat := func(c int) float64 {
		flits, err := SaturationThroughput(Config{
			Switch:  hirise(t, c, topo.L2LLRG),
			Traffic: traffic.Uniform{Radix: 64},
			Warmup:  3000, Measure: 15000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return flits / 64
	}
	u1, u2, u4 := sat(1), sat(2), sat(4)
	if !(u1 < u2 && u2 < u4) {
		t.Fatalf("utilization must grow with channels: %.3f %.3f %.3f", u1, u2, u4)
	}
	if u1 > 0.25 {
		t.Errorf("1-channel utilization %.3f exceeds its L2LC bound 0.25", u1)
	}
	if u4 < 0.5 {
		t.Errorf("4-channel utilization %.3f implausibly low", u4)
	}
}

func TestLatencyMonotonicInLoad(t *testing.T) {
	results, err := LoadSweep(
		Config{Traffic: traffic.Uniform{Radix: 64}, Warmup: 2000, Measure: 10000},
		func() Switch { return crossbar.New(64) },
		nil,
		[]float64{0.02, 0.06, 0.1},
		0,
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(results); i++ {
		if results[i].AvgLatency < results[i-1].AvgLatency-0.3 {
			t.Errorf("latency fell with load: %.2f -> %.2f",
				results[i-1].AvgLatency, results[i].AvgLatency)
		}
	}
}

func TestOfferedMatchesAcceptedBelowSaturation(t *testing.T) {
	r := run(t, Config{
		Switch:  crossbar.New(64),
		Traffic: traffic.Uniform{Radix: 64},
		Load:    0.05,
	})
	if r.Saturated() {
		t.Fatal("saturated at 5% load")
	}
	if math.Abs(r.AcceptedPackets-0.05*64) > 0.05*64*0.05 {
		t.Errorf("accepted %.2f packets/cycle, offered %.2f", r.AcceptedPackets, 0.05*64)
	}
}

func TestSaturationDropsInjections(t *testing.T) {
	r := run(t, Config{
		Switch:  crossbar.New(64),
		Traffic: traffic.Uniform{Radix: 64},
		Load:    1.0,
	})
	if !r.Saturated() {
		t.Error("full backlog should saturate source queues")
	}
}

func TestFlitPacketAccounting(t *testing.T) {
	r := run(t, Config{
		Switch:  crossbar.New(16),
		Traffic: traffic.Uniform{Radix: 16},
		Load:    0.1,
	})
	if got := r.AcceptedFlits / r.AcceptedPackets; math.Abs(got-4) > 1e-9 {
		t.Errorf("flits per packet %.2f, want 4", got)
	}
	if r.Delivered <= 0 {
		t.Error("nothing delivered")
	}
	// Injected and delivered may differ by packets straddling the window
	// boundaries, bounded by what the queues and VCs can hold.
	bound := int64(16 * (64 + 4))
	if diff := r.Injected - r.Delivered; diff > bound || diff < -bound {
		t.Errorf("conservation: %d packets unaccounted", diff)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() Result {
		return run(t, Config{
			Switch:  hirise(t, 4, topo.CLRG),
			Traffic: traffic.Uniform{Radix: 64},
			Load:    0.2,
			Seed:    77,
			Warmup:  1000, Measure: 5000,
		})
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Error("identical seeds produced different results")
	}
	c := run(t, Config{
		Switch:  hirise(t, 4, topo.CLRG),
		Traffic: traffic.Uniform{Radix: 64},
		Load:    0.2,
		Seed:    78,
		Warmup:  1000, Measure: 5000,
	})
	if reflect.DeepEqual(a.Delivered, c.Delivered) && reflect.DeepEqual(a.AvgLatency, c.AvgLatency) {
		t.Error("different seeds produced identical results")
	}
}

func TestInterLayerWorstCaseQuartersThroughput(t *testing.T) {
	// Paper §VI-B: with purely inter-layer traffic where bin-sharing
	// inputs request distinct outputs, Hi-Rise throughput collapses to
	// ~1/4 of the flat 2D switch (c=4, 4 inputs per channel).
	cfg := topo.Config{Radix: 64, Layers: 4, Channels: 4, Alloc: topo.InputBinned, Scheme: topo.CLRG, Classes: 3}
	pattern := traffic.InterLayerWorstCase{Cfg: cfg}

	hr := run(t, Config{Switch: hirise(t, 4, topo.CLRG), Traffic: pattern, Load: 1.0})
	d2 := run(t, Config{Switch: crossbar.New(64), Traffic: pattern, Load: 1.0})

	ratio := hr.AcceptedFlits / d2.AcceptedFlits
	if ratio < 0.2 || ratio > 0.3 {
		t.Errorf("worst-case ratio %.3f, want ~0.25", ratio)
	}
}

func TestLayerLocalMatches2D(t *testing.T) {
	// Purely intra-layer traffic never touches an L2LC: Hi-Rise behaves
	// like four independent crossbars and at least matches 2D throughput.
	cfg := topo.Config{Radix: 64, Layers: 4, Channels: 4, Alloc: topo.InputBinned, Scheme: topo.CLRG, Classes: 3}
	pattern := traffic.LayerLocal{Cfg: cfg}
	hr := run(t, Config{Switch: hirise(t, 4, topo.CLRG), Traffic: pattern, Load: 1.0})
	d2 := run(t, Config{Switch: crossbar.New(64), Traffic: pattern, Load: 1.0})
	if hr.AcceptedFlits < 0.95*d2.AcceptedFlits {
		t.Errorf("layer-local Hi-Rise %.1f below 2D %.1f", hr.AcceptedFlits, d2.AcceptedFlits)
	}
}

func TestPerInputBreakdownsConsistent(t *testing.T) {
	r := run(t, Config{
		Switch:  crossbar.New(16),
		Traffic: traffic.Uniform{Radix: 16},
		Load:    0.1,
	})
	var sum float64
	for _, p := range r.PerInputPackets {
		sum += p
	}
	if math.Abs(sum-r.AcceptedPackets) > 1e-9 {
		t.Errorf("per-input rates sum %.4f != aggregate %.4f", sum, r.AcceptedPackets)
	}
	if len(r.PerInputLatency) != 16 {
		t.Errorf("per-input latency length %d", len(r.PerInputLatency))
	}
}

func TestQuantilesOrdered(t *testing.T) {
	r := run(t, Config{
		Switch:  crossbar.New(64),
		Traffic: traffic.Uniform{Radix: 64},
		Load:    0.12,
	})
	if !(r.P50Latency <= r.P99Latency) {
		t.Errorf("P50 %.1f > P99 %.1f", r.P50Latency, r.P99Latency)
	}
	if r.AvgLatency < 5 {
		t.Errorf("average latency %.2f below pipeline depth", r.AvgLatency)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Traffic: traffic.Uniform{Radix: 4}}, // no switch
		{Switch: crossbar.New(4)},            // no traffic
		{Switch: crossbar.New(4), Traffic: traffic.Uniform{Radix: 4}, Load: -1},
		{Switch: crossbar.New(4), Traffic: traffic.Uniform{Radix: 4}, Warmup: -1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func BenchmarkUniform2D64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := Run(Config{
			Switch:  crossbar.New(64),
			Traffic: traffic.Uniform{Radix: 64},
			Load:    0.2, Warmup: 500, Measure: 2000,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUniformHiRiseCLRG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := Run(Config{
			Switch:  hirise(b, 4, topo.CLRG),
			Traffic: traffic.Uniform{Radix: 64},
			Load:    0.2, Warmup: 500, Measure: 2000,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
