package sim

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"github.com/reprolab/hirise/internal/crossbar"
	"github.com/reprolab/hirise/internal/obs"
	"github.com/reprolab/hirise/internal/sched"
	"github.com/reprolab/hirise/internal/tele"
	"github.com/reprolab/hirise/internal/traffic"
)

func teleCfg(seed uint64) Config {
	return Config{
		Switch:  crossbar.New(16),
		Traffic: traffic.Uniform{Radix: 16},
		Load:    0.3, Warmup: 1000, Measure: 8000, Seed: seed,
	}
}

// TestTelemetryNonPerturbing: attaching a sampler changes nothing but
// the Converged/WarmupCycles verdict fields — every measurement is
// identical to the unobserved run.
func TestTelemetryNonPerturbing(t *testing.T) {
	plain, err := Run(teleCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	cfg := teleCfg(7)
	cfg.Obs = &obs.Observer{Tele: tele.NewSampler(64, 128)}
	sampled, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sampled.Converged {
		t.Fatal("uniform 30% load did not converge over 8000 cycles")
	}
	sampled.Converged, sampled.WarmupCycles = false, 0
	if !reflect.DeepEqual(plain, sampled) {
		t.Fatalf("telemetry perturbed the run:\nplain   %+v\nsampled %+v", plain, sampled)
	}
}

// TestTelemetrySeriesContents: the sampler's counter mass matches the
// whole-run obs counters (telemetry observes the simulation, not just
// the measurement window), and the gauge tracks exist.
func TestTelemetrySeriesContents(t *testing.T) {
	cfg := teleCfg(3)
	reg := obs.NewRegistry()
	s := tele.NewSampler(64, 256)
	cfg.Obs = &obs.Observer{Metrics: reg, Tele: s}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	// 9000 cycles at window 64 → 140 full windows covering 8960
	// cycles; the partial tail is dropped, so series mass can trail the
	// registry total by at most one window of events. Compare against
	// a registry re-run truncated to full windows instead: just check
	// the series sums stay within one window of the registry counters.
	for _, name := range []string{"sim.packets.injected", "sim.packets.delivered", "sim.arb.wins"} {
		var mass float64
		for _, v := range s.Values(name) {
			mass += v
		}
		total := float64(reg.Counter(name).Value())
		if mass > total || total-mass > 64*16 {
			t.Errorf("series %s mass %v vs counter %v: outside one window", name, mass, total)
		}
	}
	if s.Values("sim.queue.occupancy") == nil || s.Values("sim.flits.inflight") == nil {
		t.Fatal("gauge tracks missing")
	}
	if got := len(s.Values(teleDeliveredSeries)); got != s.Windows() {
		t.Fatalf("series length %d != %d windows", got, s.Windows())
	}
}

// TestTelemetryDeterministicAcrossWorkers: per-point samplers serialize
// byte-identically at -parallel 1, 4, and GOMAXPROCS, with and without
// ConvergeStop.
func TestTelemetryDeterministicAcrossWorkers(t *testing.T) {
	loads := []float64{0.1, 0.25, 0.4, 0.6, 0.8}
	for _, converge := range []bool{false, true} {
		sweep := func(workers int) ([]Result, []byte) {
			base := teleCfg(11)
			base.ConvergeStop = converge
			samps := make([]*tele.Sampler, len(loads))
			observers := make([]*obs.Observer, len(loads))
			for i := range samps {
				samps[i] = tele.NewSampler(64, 128)
				observers[i] = &obs.Observer{Tele: samps[i]}
			}
			res, err := LoadSweepObserved(base,
				func() Switch { return crossbar.New(16) }, nil,
				loads, workers, func(i int) *obs.Observer { return observers[i] })
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := tele.WriteNDJSON(&buf, samps); err != nil {
				t.Fatal(err)
			}
			return res, buf.Bytes()
		}
		res1, b1 := sweep(1)
		res4, b4 := sweep(4)
		resMax, bMax := sweep(runtime.GOMAXPROCS(0))
		if !bytes.Equal(b1, b4) || !bytes.Equal(b1, bMax) {
			t.Fatalf("telemetry NDJSON differs across worker counts (converge=%v)", converge)
		}
		if !reflect.DeepEqual(res1, res4) || !reflect.DeepEqual(res1, resMax) {
			t.Fatalf("results differ across worker counts (converge=%v)", converge)
		}
	}
}

// TestConvergeStop: a long steady run stops early (fewer injected
// packets than the full-length run), reports convergence, and keeps
// its rate estimates close to the full-length truth.
func TestConvergeStop(t *testing.T) {
	full := teleCfg(5)
	full.Measure = 60000
	fres, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}
	early := full
	early.Switch = crossbar.New(16)
	early.ConvergeStop = true
	eres, err := Run(early)
	if err != nil {
		t.Fatal(err)
	}
	if !eres.Converged {
		t.Fatal("ConvergeStop run did not converge")
	}
	if eres.Injected >= fres.Injected {
		t.Fatalf("ConvergeStop did not stop early: injected %d vs full %d", eres.Injected, fres.Injected)
	}
	if eres.Injected == 0 {
		t.Fatal("ConvergeStop run measured nothing")
	}
	// The early estimate must agree with the converged truth within a
	// loose statistical tolerance.
	if diff := eres.AcceptedPackets - fres.AcceptedPackets; diff > 0.05*16 || diff < -0.05*16 {
		t.Fatalf("early-stop throughput %v too far from full-run %v", eres.AcceptedPackets, fres.AcceptedPackets)
	}
	// The same config twice is cycle-for-cycle deterministic.
	again := full
	again.Switch = crossbar.New(16)
	again.ConvergeStop = true
	ares, err := Run(again)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(eres, ares) {
		t.Fatal("ConvergeStop is not deterministic")
	}
}

// TestConvergeStopVOQ: the VOQ simulator honors ConvergeStop too.
func TestConvergeStopVOQ(t *testing.T) {
	base := VOQConfig{
		Radix: 16, Sched: sched.NewISLIP(16, 2),
		Traffic: traffic.Uniform{Radix: 16},
		Load:    0.3, Warmup: 1000, Measure: 60000, Seed: 9,
	}
	fres, err := RunVOQ(base)
	if err != nil {
		t.Fatal(err)
	}
	early := base
	early.Sched = sched.NewISLIP(16, 2)
	early.ConvergeStop = true
	eres, err := RunVOQ(early)
	if err != nil {
		t.Fatal(err)
	}
	if !eres.Converged {
		t.Fatal("VOQ ConvergeStop run did not converge")
	}
	if eres.Injected >= fres.Injected {
		t.Fatalf("VOQ ConvergeStop did not stop early: injected %d vs full %d", eres.Injected, fres.Injected)
	}
}

// TestRunSteadyStateAllocsTelemetryDisabled extends the alloc pin to
// the new telemetry hooks: the nil-sampler path must not add per-cycle
// allocations (the handles are nil and Tick is a compare).
func TestRunSteadyStateAllocsTelemetryDisabled(t *testing.T) {
	allocs := func(cycles int64) float64 {
		return testing.AllocsPerRun(3, func() {
			if _, err := Run(Config{
				Switch:  crossbar.New(64),
				Traffic: traffic.Uniform{Radix: 64},
				Load:    0.3, Warmup: 500, Measure: cycles, Seed: 7,
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
	short, long := allocs(2000), allocs(8000)
	if long > short+2 {
		t.Errorf("telemetry-disabled hot loop allocated %.0f extra times over 6000 extra cycles", long-short)
	}
}

// TestRunSteadyStateAllocsTelemetryEnabled: with a sampler attached,
// steady-state cost stays flat too — windows append into preallocated
// storage and decimation is in place, so longer runs cost no more
// allocations than shorter ones.
func TestRunSteadyStateAllocsTelemetryEnabled(t *testing.T) {
	allocs := func(cycles int64) float64 {
		return testing.AllocsPerRun(3, func() {
			if _, err := Run(Config{
				Switch:  crossbar.New(64),
				Traffic: traffic.Uniform{Radix: 64},
				Load:    0.3, Warmup: 500, Measure: cycles, Seed: 7,
				Obs: &obs.Observer{Tele: tele.NewSampler(64, 64)},
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
	short, long := allocs(2000), allocs(8000)
	if long > short+2 {
		t.Errorf("telemetry-enabled hot loop allocated %.0f extra times over 6000 extra cycles", long-short)
	}
}
