package sim

import (
	"context"
	"fmt"

	"github.com/reprolab/hirise/internal/bitvec"
	"github.com/reprolab/hirise/internal/obs"
	"github.com/reprolab/hirise/internal/pool"
	"github.com/reprolab/hirise/internal/prng"
	"github.com/reprolab/hirise/internal/sched"
	"github.com/reprolab/hirise/internal/stats"
	"github.com/reprolab/hirise/internal/tele"
)

// VOQConfig parameterizes one virtual-output-queued simulation run
// (RunVOQ). Where Config models the paper's switches behind a
// single-FIFO head-of-line view per input, VOQConfig models the Tiny
// Tera style cell switch: every input keeps one queue per output, an
// input-queued scheduler (internal/sched) computes a crossbar matching
// per scheduling phase, and an internal speedup S runs S phases per
// cell time into small bounded output queues.
//
// The VOQ mode is cell-based: a packet is one cell (one flit), so the
// accepted packet and flit rates coincide and there is no per-packet
// occupancy tail like Config.PacketFlits models. That matches the
// scheduler literature's setup and keeps the shootout focused on
// matching quality rather than connection lifecycles.
type VOQConfig struct {
	// Radix is the port count; must equal Sched.N().
	Radix int
	// Sched computes the per-phase matching. Schedulers are stateful
	// (round-robin pointers); a config must own its instance.
	Sched sched.Scheduler
	// Traffic produces the offered load, exactly as in Config.
	Traffic Traffic
	// Load is the offered load in cells per cycle per input.
	Load float64
	// Speedup is the internal crossbar speedup S (Tiny Tera §: the
	// fabric runs S matching+transfer phases per external cell time).
	// Default 1.
	Speedup int
	// VOQCap bounds each (input, output) virtual output queue in cells;
	// injections arriving at a full VOQ are counted and discarded
	// (Result.DroppedInjections), capping offered load past saturation.
	// Default 32.
	VOQCap int
	// OutQCap bounds each output queue in cells; outputs with a full
	// queue are masked from scheduling. It only binds when Speedup > 1
	// (at S=1 an output receives at most one cell per cycle and drains
	// one). Default 16.
	OutQCap int
	// Warmup and Measure are the cycle windows, as in Config.
	Warmup, Measure int64
	// Seed drives all stochastic choices.
	Seed uint64
	// Ctx, when non-nil, makes the run cancellable (see Config.Ctx).
	Ctx context.Context
	// Obs attaches observability sinks (see Config.Obs). The fairness
	// audit sees one Observe call per requesting input per scheduling
	// phase, all under class 0.
	Obs *obs.Observer
	// ConvergeStop ends the run early once the MSER steady-state
	// detector converges, exactly as in Config.ConvergeStop.
	ConvergeStop bool
}

// Defaults fills unset fields. As in Config.Defaults, zero means
// "unset": Seed 0 becomes 1, Warmup 0 the 10000-cycle default.
func (c *VOQConfig) Defaults() {
	if c.Speedup == 0 {
		c.Speedup = 1
	}
	if c.VOQCap == 0 {
		c.VOQCap = 32
	}
	if c.OutQCap == 0 {
		c.OutQCap = 16
	}
	if c.Warmup == 0 {
		c.Warmup = 10000
	}
	if c.Measure == 0 {
		c.Measure = 50000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

func (c *VOQConfig) validate() error {
	switch {
	case c.Sched == nil:
		return fmt.Errorf("sim: no scheduler")
	case c.Traffic == nil:
		return fmt.Errorf("sim: no traffic")
	case c.Radix <= 0:
		return fmt.Errorf("sim: non-positive radix %d", c.Radix)
	case c.Sched.N() != c.Radix:
		return fmt.Errorf("sim: scheduler over %d ports driving a radix-%d switch", c.Sched.N(), c.Radix)
	case c.Load < 0:
		return fmt.Errorf("sim: negative load %v", c.Load)
	case c.Speedup < 1 || c.VOQCap < 1 || c.OutQCap < 1:
		return fmt.Errorf("sim: non-positive structural parameter")
	case c.Warmup < 0 || c.Measure <= 0:
		return fmt.Errorf("sim: bad windows warmup=%d measure=%d", c.Warmup, c.Measure)
	}
	return nil
}

// outCell is one cell in an output queue; the source input rides along
// for the per-input latency accounting.
type outCell struct {
	birth int64
	in    int32
}

// RunVOQ executes one VOQ simulation and returns its measurements. The
// per-cycle order is: S scheduling phases (each moves at most one cell
// per matched input from its VOQ head into the matched output's queue),
// then each output delivers one cell, then inputs inject. A cell
// injected at cycle t is thus schedulable at t+1 and its minimum
// latency is 1 cycle.
func RunVOQ(cfg VOQConfig) (Result, error) {
	cfg.Defaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	n := cfg.Radix

	rec := cfg.Obs.Rec()
	audit := cfg.Obs.Audit()
	mInjected := cfg.Obs.Counter("sim.packets.injected")
	mDelivered := cfg.Obs.Counter("sim.packets.delivered")
	mDropped := cfg.Obs.Counter("sim.packets.dropped")
	mFlits := cfg.Obs.Counter("sim.flits.delivered")
	mWins := cfg.Obs.Counter("sim.arb.wins")
	mLosses := cfg.Obs.Counter("sim.arb.losses")
	mLatency := cfg.Obs.Histogram("sim.latency.cycles", 4, 4096)
	cfg.Obs.Gauge("sim.offered.load").Set(cfg.Load)

	// Telemetry plane (see Run): nil-safe windowed series over the run.
	samp := cfg.Obs.Sampler()
	if samp == nil && cfg.ConvergeStop {
		samp = tele.NewSampler(0, 0)
	}
	tInjected := samp.Counter("sim.packets.injected")
	tDelivered := samp.Counter(teleDeliveredSeries)
	tDropped := samp.Counter("sim.packets.dropped")
	tWins := samp.Counter("sim.arb.wins")
	tLosses := samp.Counter("sim.arb.losses")

	root := prng.New(cfg.Seed)
	rngs := make([]*prng.Source, n)
	for i := range rngs {
		rngs[i] = root.Split()
	}

	// VOQ state: one bounded ring of birth cycles per (input, output)
	// pair, flattened. voqLen doubles as the scheduler's queue-length
	// weight vector.
	voqBuf := make([]int64, n*n*cfg.VOQCap)
	voqHead := make([]int32, n*n)
	voqLen := make([]int32, n*n)
	voqBits := make([]bitvec.Vec, n) // per input: outputs with a non-empty VOQ
	req := make([]bitvec.Vec, n)
	for i := range voqBits {
		voqBits[i] = bitvec.New(n)
		req[i] = bitvec.New(n)
	}
	outOK := bitvec.New(n) // outputs with output-queue room
	outOK.SetFirstN(n)
	outBuf := make([]outCell, n*cfg.OutQCap)
	outHead := make([]int32, n)
	outLen := make([]int32, n)
	match := make([]int, n)

	if samp != nil {
		// Level tracks: cells waiting across all VOQs, and cells parked
		// in output queues awaiting their drain slot.
		samp.GaugeFunc("sim.queue.occupancy", func() float64 {
			var occ int32
			for _, l := range voqLen {
				occ += l
			}
			return float64(occ)
		})
		samp.GaugeFunc("sim.flits.inflight", func() float64 {
			var fl int32
			for _, l := range outLen {
				fl += l
			}
			return float64(fl)
		})
	}

	hist := stats.NewHistogram(4, 4096)
	perLat := stats.NewPerPort(n)
	perPkt := make([]int64, n)
	var injected, delivered, dropped int64

	total := cfg.Warmup + cfg.Measure
	var stoppedAt int64 // cycle count at a ConvergeStop early exit, 0 = ran full length
	for cycle := int64(0); cycle < total; cycle++ {
		if cfg.Ctx != nil && cycle%ctxCheckInterval == 0 && cfg.Ctx.Err() != nil {
			return Result{}, fmt.Errorf("sim: run cancelled at cycle %d: %w", cycle, cfg.Ctx.Err())
		}
		measuring := cycle >= cfg.Warmup

		// 1. S scheduling phases. Requests are the non-empty VOQs toward
		// outputs with queue room; each phase computes one matching.
		for phase := 0; phase < cfg.Speedup; phase++ {
			any := false
			for in := 0; in < n; in++ {
				req[in].Copy(voqBits[in])
				req[in].And(outOK)
				if !any && req[in].Any() {
					any = true
				}
			}
			if !any {
				break
			}
			cfg.Sched.Schedule(req, voqLen, match)
			for in := 0; in < n; in++ {
				requested := req[in].Any()
				o := match[in]
				if audit != nil && requested {
					audit.Observe(in, 0, o >= 0)
				}
				if o < 0 {
					if requested {
						mLosses.Inc()
						tLosses.Inc()
						rec.Record(cycle, obs.EvArbLose, in, req[in].First(), phase)
					}
					continue
				}
				mWins.Inc()
				tWins.Inc()
				rec.Record(cycle, obs.EvArbWin, in, o, phase)
				// Move the VOQ head cell into the output queue.
				vi := in*n + o
				birth := voqBuf[vi*cfg.VOQCap+int(voqHead[vi])]
				if voqHead[vi]++; voqHead[vi] == int32(cfg.VOQCap) {
					voqHead[vi] = 0
				}
				if voqLen[vi]--; voqLen[vi] == 0 {
					voqBits[in].Clear(o)
				}
				oi := (outHead[o] + outLen[o]) % int32(cfg.OutQCap)
				outBuf[o*cfg.OutQCap+int(oi)] = outCell{birth: birth, in: int32(in)}
				if outLen[o]++; outLen[o] == int32(cfg.OutQCap) {
					outOK.Clear(o)
				}
			}
		}

		// 2. Each output delivers one cell per cycle.
		for o := 0; o < n; o++ {
			if outLen[o] == 0 {
				continue
			}
			cell := outBuf[o*cfg.OutQCap+int(outHead[o])]
			if outHead[o]++; outHead[o] == int32(cfg.OutQCap) {
				outHead[o] = 0
			}
			outLen[o]--
			outOK.Set(o)
			lat := cycle - cell.birth
			in := int(cell.in)
			if measuring {
				hist.Add(float64(lat))
				perLat.Add(in, float64(lat))
				perPkt[in]++
				delivered++
			}
			mDelivered.Inc()
			mFlits.Inc()
			tDelivered.Inc()
			mLatency.Observe(float64(lat))
			rec.Record(cycle, obs.EvEject, in, o, int(lat))
		}

		// 3. Inject new cells into the VOQs.
		for in := 0; in < n; in++ {
			dest, ok := cfg.Traffic.Next(in, cycle, cfg.Load, rngs[in])
			if !ok {
				continue
			}
			vi := in*n + dest
			if voqLen[vi] == int32(cfg.VOQCap) {
				if measuring {
					dropped++
				}
				mDropped.Inc()
				tDropped.Inc()
				rec.Record(cycle, obs.EvDrop, in, dest, 0)
				continue
			}
			ti := (voqHead[vi] + voqLen[vi]) % int32(cfg.VOQCap)
			voqBuf[vi*cfg.VOQCap+int(ti)] = cycle
			voqLen[vi]++
			voqBits[in].Set(dest)
			if measuring {
				injected++
			}
			mInjected.Inc()
			tInjected.Inc()
			rec.Record(cycle, obs.EvInject, in, dest, 0)
		}

		// 4. Telemetry window close and ConvergeStop check (see Run).
		if samp.Tick(cycle+1) && cfg.ConvergeStop &&
			cycle+1 >= cfg.Warmup+(cfg.Measure+7)/8 &&
			samp.Windows() >= convergeMinWindows {
			if _, ok := tele.MSER(samp.Values(teleDeliveredSeries)); ok {
				stoppedAt = cycle + 1
				break
			}
		}
	}

	measured := float64(cfg.Measure)
	if stoppedAt > 0 {
		measured = float64(stoppedAt - cfg.Warmup)
	}
	res := Result{
		OfferedLoad:       cfg.Load,
		AcceptedFlits:     float64(delivered) / measured,
		AcceptedPackets:   float64(delivered) / measured,
		AvgLatency:        hist.Mean(),
		P50Latency:        hist.Quantile(0.5),
		P99Latency:        hist.Quantile(0.99),
		PerInputLatency:   perLat.Means(),
		PerInputPackets:   make([]float64, n),
		Injected:          injected,
		Delivered:         delivered,
		DroppedInjections: dropped,
	}
	for i, c := range perPkt {
		res.PerInputPackets[i] = float64(c) / measured
	}
	if samp != nil {
		cut, conv := tele.MSER(samp.Values(teleDeliveredSeries))
		res.Converged = conv
		if conv {
			res.WarmupCycles = int64(cut) * samp.Window()
		}
	}
	return res, nil
}

// VOQLoadSweep runs the VOQ configuration at each load on at most
// workers concurrent simulations and returns the results in load order,
// mirroring LoadSweep: each point gets a fresh scheduler from newSched
// (schedulers carry pointer state) and, when newTraffic is non-nil, its
// own traffic instance, and derives its seed from (base.Seed, point
// index) via pool.SeedFor, so results are identical at every worker
// count.
func VOQLoadSweep(base VOQConfig, newSched func() sched.Scheduler, newTraffic func() Traffic, loads []float64, workers int) ([]Result, error) {
	return VOQLoadSweepObserved(base, newSched, newTraffic, loads, workers, nil)
}

// VOQLoadSweepObserved is VOQLoadSweep with per-point observability,
// with the same obsFor contract as LoadSweepObserved.
func VOQLoadSweepObserved(base VOQConfig, newSched func() sched.Scheduler, newTraffic func() Traffic, loads []float64, workers int, obsFor func(i int) *obs.Observer) ([]Result, error) {
	out := make([]Result, len(loads))
	errs := make([]error, len(loads))
	pool.DoCtx(base.Ctx, len(loads), workers, func(i int) {
		cfg := base
		if newSched != nil {
			cfg.Sched = newSched()
		}
		if newTraffic != nil {
			cfg.Traffic = newTraffic()
		}
		if obsFor != nil {
			cfg.Obs = obsFor(i)
		}
		cfg.Load = loads[i]
		cfg.Seed = pool.SeedFor(base.Seed, uint64(i))
		out[i], errs[i] = RunVOQ(cfg)
	})
	if base.Ctx != nil && base.Ctx.Err() != nil {
		return nil, base.Ctx.Err()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
