package sim

import (
	"math"
	"reflect"
	"testing"

	"github.com/reprolab/hirise/internal/obs"
	"github.com/reprolab/hirise/internal/sched"
	"github.com/reprolab/hirise/internal/traffic"
)

func voqCfg(n int, s sched.Scheduler, load float64) VOQConfig {
	return VOQConfig{
		Radix: n, Sched: s, Traffic: traffic.Uniform{Radix: n},
		Load: load, Warmup: 1000, Measure: 5000, Seed: 7,
	}
}

// TestRunVOQLowLoadDeliversOffered pins the open-loop baseline: well
// below saturation every scheduler delivers what is offered, drops
// nothing, and the minimum cell latency of 1 cycle holds.
func TestRunVOQLowLoadDeliversOffered(t *testing.T) {
	const n, load = 32, 0.4
	for name, mk := range map[string]func() sched.Scheduler{
		"islip-1":   func() sched.Scheduler { return sched.NewISLIP(n, 1) },
		"islip-2":   func() sched.Scheduler { return sched.NewISLIP(n, 2) },
		"wavefront": func() sched.Scheduler { return sched.NewWavefront(n) },
	} {
		res, err := RunVOQ(voqCfg(n, mk(), load))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.DroppedInjections != 0 {
			t.Errorf("%s: dropped %d injections at load %.1f", name, res.DroppedInjections, load)
		}
		want := load * n
		if math.Abs(res.AcceptedPackets-want) > 0.05*want {
			t.Errorf("%s: accepted %.2f cells/cycle, want ≈%.2f", name, res.AcceptedPackets, want)
		}
		if res.P50Latency < 1 {
			t.Errorf("%s: p50 latency %.2f < minimum 1 cycle", name, res.P50Latency)
		}
		if res.AcceptedFlits != res.AcceptedPackets {
			t.Errorf("%s: cell mode must report equal flit and packet rates", name)
		}
	}
}

// TestRunVOQUniformSaturationISLIP pins the desynchronization payoff end
// to end: multi-iteration iSLIP under saturated uniform i.i.d. traffic
// sustains ≥95%% of capacity (the acceptance criterion the shootout
// table reports at full fidelity).
func TestRunVOQUniformSaturationISLIP(t *testing.T) {
	const n = 64
	cfg := voqCfg(n, sched.NewISLIP(n, 2), 1.0)
	cfg.Warmup, cfg.Measure = 2000, 10000
	res, err := RunVOQ(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AcceptedPackets < 0.95*float64(n) {
		t.Fatalf("iSLIP-2 accepted %.2f cells/cycle at saturation, want ≥ %.2f",
			res.AcceptedPackets, 0.95*float64(n))
	}
}

// TestRunVOQSpeedupDrainsHotspot pins the speedup axis and the output
// queue: with every input targeting one output, delivery is capped by
// the output's 1 cell/cycle drain regardless of S, and S=2 must not
// disturb that (the output queue absorbs and re-bounds the extra
// matchings).
func TestRunVOQSpeedupDrainsHotspot(t *testing.T) {
	const n = 16
	for _, speedup := range []int{1, 2} {
		cfg := voqCfg(n, sched.NewISLIP(n, 1), 1.0)
		cfg.Traffic = traffic.Hotspot{Target: 3}
		cfg.Speedup = speedup
		res, err := RunVOQ(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.AcceptedPackets-1.0) > 0.02 {
			t.Errorf("S=%d: hotspot accepted %.3f cells/cycle, want ≈1.0", speedup, res.AcceptedPackets)
		}
		if !res.Saturated() {
			t.Errorf("S=%d: hotspot at load 1.0 must saturate the VOQs", speedup)
		}
	}
}

// TestRunVOQDeterminism pins that identical configs produce identical
// results, including with observability attached (sinks must not
// perturb the simulation).
func TestRunVOQDeterminism(t *testing.T) {
	const n = 32
	run := func(o *obs.Observer) Result {
		cfg := voqCfg(n, sched.NewISLIP(n, 2), 0.9)
		cfg.Obs = o
		res, err := RunVOQ(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	observed := run(&obs.Observer{
		Metrics:  obs.NewRegistry(),
		Fairness: obs.NewFairnessAudit(n, 1),
	})
	if !reflect.DeepEqual(plain, observed) {
		t.Fatalf("observed run diverged from plain run:\n%+v\n%+v", plain, observed)
	}
	if again := run(nil); !reflect.DeepEqual(plain, again) {
		t.Fatalf("re-run diverged:\n%+v\n%+v", plain, again)
	}
}

// TestVOQLoadSweepWorkerInvariance pins the determinism contract for the
// sweep: any worker count yields byte-identical results.
func TestVOQLoadSweepWorkerInvariance(t *testing.T) {
	const n = 16
	base := voqCfg(n, nil, 0)
	loads := []float64{0.2, 0.5, 0.8, 1.0}
	newSched := func() sched.Scheduler { return sched.NewISLIP(n, 2) }
	serial, err := VOQLoadSweep(base, newSched, nil, loads, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := VOQLoadSweep(base, newSched, nil, loads, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("sweep diverged across worker counts:\n%+v\n%+v", serial, parallel)
	}
}

// TestRunVOQFairnessAudit pins the audit wiring: under a two-flow
// conflict the audit must see both inputs requesting and the win shares
// must be near-equal for the pointer-desynchronized scheduler.
func TestRunVOQFairnessAudit(t *testing.T) {
	const n = 8
	audit := obs.NewFairnessAudit(n, 1)
	cfg := voqCfg(n, sched.NewISLIP(n, 1), 1.0)
	cfg.Traffic = traffic.Fixed{Flows: map[int]int{1: 5, 2: 5}}
	cfg.Obs = &obs.Observer{Fairness: audit}
	if _, err := RunVOQ(cfg); err != nil {
		t.Fatal(err)
	}
	rep := audit.Report()
	if rep.TotalRequests == 0 {
		t.Fatal("audit saw no requests")
	}
	for _, in := range rep.Inputs {
		if in.Input != 1 && in.Input != 2 && in.Requests != 0 {
			t.Fatalf("idle input %d has %d requests", in.Input, in.Requests)
		}
	}
	if rep.JainIndex < 0.99 {
		t.Errorf("two symmetric flows under accept-gated iSLIP: Jain %.4f, want ≈1", rep.JainIndex)
	}
}

// TestRunVOQValidate pins the config error paths.
func TestRunVOQValidate(t *testing.T) {
	bad := []VOQConfig{
		{},
		{Radix: 8, Sched: sched.NewISLIP(8, 1)},
		{Radix: 8, Sched: sched.NewISLIP(16, 1), Traffic: traffic.Uniform{Radix: 8}},
		{Radix: 8, Sched: sched.NewISLIP(8, 1), Traffic: traffic.Uniform{Radix: 8}, Load: -1},
		{Radix: 8, Sched: sched.NewISLIP(8, 1), Traffic: traffic.Uniform{Radix: 8}, Speedup: -1},
	}
	for i, cfg := range bad {
		if _, err := RunVOQ(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// TestRunVOQSteadyStateAllocs extends the PR 4 alloc discipline to the
// VOQ mode: with Obs disabled, all allocation is setup; four times the
// cycles must not allocate more.
func TestRunVOQSteadyStateAllocs(t *testing.T) {
	for name, mk := range map[string]func() sched.Scheduler{
		"islip-2":   func() sched.Scheduler { return sched.NewISLIP(64, 2) },
		"wavefront": func() sched.Scheduler { return sched.NewWavefront(64) },
	} {
		t.Run(name, func(t *testing.T) {
			allocs := func(cycles int64) float64 {
				return testing.AllocsPerRun(3, func() {
					cfg := voqCfg(64, mk(), 0.8)
					cfg.Warmup, cfg.Measure = 500, cycles
					if _, err := RunVOQ(cfg); err != nil {
						t.Fatal(err)
					}
				})
			}
			short, long := allocs(2000), allocs(8000)
			if long > short+2 {
				t.Errorf("6000 extra cycles allocated %.0f extra times (%.0f -> %.0f); VOQ hot loop no longer allocation-free",
					long-short, short, long)
			}
		})
	}
}
