// Package stats provides the measurement machinery shared by the switch
// simulator and the many-core system model: running summaries, quantile
// estimation via fixed-width histograms, per-port breakdowns, and
// throughput accounting over warmup/measurement windows.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a running mean/variance/min/max using Welford's
// algorithm. The zero value is ready to use.
type Summary struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// Reset discards every observation, returning s to its zero value.
func (s *Summary) Reset() { *s = Summary{} }

// N returns the number of observations.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean, or 0 with no observations.
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation, or 0 with no observations.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with no observations.
func (s *Summary) Max() float64 { return s.max }

// Variance returns the unbiased sample variance.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// Merge folds other into s, as if every observation of other had been
// Added to s.
func (s *Summary) Merge(other *Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	n := s.n + other.n
	d := other.mean - s.mean
	mean := s.mean + d*float64(other.n)/float64(n)
	m2 := s.m2 + other.m2 + d*d*float64(s.n)*float64(other.n)/float64(n)
	min, max := s.min, s.max
	if other.min < min {
		min = other.min
	}
	if other.max > max {
		max = other.max
	}
	*s = Summary{n: n, mean: mean, m2: m2, min: min, max: max}
}

func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f",
		s.n, s.Mean(), s.StdDev(), s.min, s.max)
}

// Histogram is a fixed-bin-width histogram over [0, BinWidth*len(bins)),
// with an overflow bucket. It supports approximate quantiles, which is all
// the latency plots need.
type Histogram struct {
	binWidth float64
	bins     []int64
	overflow int64
	sum      Summary
}

// NewHistogram creates a histogram with nbins bins of the given width.
func NewHistogram(binWidth float64, nbins int) *Histogram {
	if binWidth <= 0 || nbins <= 0 {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{binWidth: binWidth, bins: make([]int64, nbins)}
}

// Add records one observation. Negative values (including -Inf) clamp
// to bin 0; values at or above the histogram's upper bound (including
// +Inf) land in the overflow bucket; NaN observations are discarded
// entirely — they carry no ordering information to bin and would
// otherwise poison the running mean. (Converting NaN or ±Inf to int is
// platform-defined in Go — on amd64 it yields the most negative int —
// so the pre-conversion guards here are what keep Add panic-free.)
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	h.sum.Add(x)
	if x < 0 {
		h.bins[0]++
		return
	}
	if x >= h.binWidth*float64(len(h.bins)) {
		h.overflow++
		return
	}
	i := int(x / h.binWidth)
	if i >= len(h.bins) { // float rounding at the upper edge
		i = len(h.bins) - 1
	}
	h.bins[i]++
}

// Reset discards every observation, keeping the bin shape. A reset
// histogram behaves exactly like a fresh NewHistogram of the same shape,
// without reallocating the bins.
func (h *Histogram) Reset() {
	for i := range h.bins {
		h.bins[i] = 0
	}
	h.overflow = 0
	h.sum.Reset()
}

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.sum.N() }

// Mean returns the exact sample mean (not binned).
func (h *Histogram) Mean() float64 { return h.sum.Mean() }

// Quantile returns an approximation of the q-th quantile. q is clamped
// to [0,1], with NaN treated as 0; an empty histogram returns 0. Values
// in the overflow bucket report as the histogram's upper bound.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.sum.N()
	if n == 0 {
		return 0
	}
	if !(q > 0) { // negative or NaN
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(n-1))
	var cum int64
	for i, c := range h.bins {
		cum += c
		if cum > target {
			return (float64(i) + 0.5) * h.binWidth
		}
	}
	return h.binWidth * float64(len(h.bins))
}

// Throughput tracks accepted traffic over a measurement window, in units
// of events (flits or packets) per cycle.
type Throughput struct {
	events int64
	cycles int64
}

// Record adds n accepted events.
func (t *Throughput) Record(n int64) { t.events += n }

// Advance adds elapsed cycles to the window.
func (t *Throughput) Advance(cycles int64) { t.cycles += cycles }

// Events returns the number of recorded events.
func (t *Throughput) Events() int64 { return t.events }

// Cycles returns the window length.
func (t *Throughput) Cycles() int64 { return t.cycles }

// Rate returns events per cycle over the window, or 0 when no cycles
// have elapsed (an empty window offers no rate, not a division error).
func (t *Throughput) Rate() float64 {
	if t.cycles == 0 {
		return 0
	}
	return float64(t.events) / float64(t.cycles)
}

// PerPort bundles a Summary per port plus an aggregate, for Fig 11(a)/(c)
// style per-input breakdowns.
type PerPort struct {
	Ports []Summary
	All   Summary
}

// NewPerPort creates a PerPort for n ports.
func NewPerPort(n int) *PerPort {
	return &PerPort{Ports: make([]Summary, n)}
}

// Add records an observation for port p.
func (pp *PerPort) Add(p int, x float64) {
	pp.Ports[p].Add(x)
	pp.All.Add(x)
}

// Reset discards every observation, keeping the port count.
func (pp *PerPort) Reset() {
	for i := range pp.Ports {
		pp.Ports[i].Reset()
	}
	pp.All.Reset()
}

// Means returns the per-port means.
func (pp *PerPort) Means() []float64 {
	return pp.MeansInto(make([]float64, len(pp.Ports)))
}

// MeansInto writes the per-port means into out (which must span the port
// count) and returns it; the allocation-free form of Means.
func (pp *PerPort) MeansInto(out []float64) []float64 {
	for i := range pp.Ports {
		out[i] = pp.Ports[i].Mean()
	}
	return out
}

// Fairness metrics over a set of per-flow rates.

// JainIndex returns Jain's fairness index of xs: (Σx)² / (n·Σx²).
// 1.0 is perfectly fair; 1/n is maximally unfair. Returns 1 for empty or
// all-zero input.
func JainIndex(xs []float64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 || len(xs) == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// MaxMinRatio returns max(xs)/min(xs), or +Inf if min is zero while max is
// not, or 1 for empty input.
func MaxMinRatio(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	min, max := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	if min == 0 {
		if max == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return max / min
}

// Median returns the median of xs (xs is not modified).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return (cp[mid-1] + cp[mid]) / 2
}
