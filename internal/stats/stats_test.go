package stats

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/reprolab/hirise/internal/prng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(x)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if !almost(s.Mean(), 3, 1e-12) {
		t.Errorf("mean = %v", s.Mean())
	}
	if !almost(s.Variance(), 2.5, 1e-12) {
		t.Errorf("variance = %v", s.Variance())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 {
		t.Fatal("empty summary should report zeros")
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := prng.New(seed)
		var all, a, b Summary
		for i := 0; i < 200; i++ {
			x := src.Float64()*100 - 50
			all.Add(x)
			if i%2 == 0 {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(&b)
		return a.N() == all.N() &&
			almost(a.Mean(), all.Mean(), 1e-9) &&
			almost(a.Variance(), all.Variance(), 1e-6) &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryMergeEmptyCases(t *testing.T) {
	var a, b Summary
	a.Add(2)
	before := a
	a.Merge(&b) // merging empty is a no-op
	if a != before {
		t.Fatal("merge with empty changed summary")
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 2 {
		t.Fatal("merge into empty did not copy")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(1, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i % 100))
	}
	if q := h.Quantile(0.5); !almost(q, 50, 2) {
		t.Errorf("median %v", q)
	}
	if q := h.Quantile(0.99); !almost(q, 99, 2) {
		t.Errorf("p99 %v", q)
	}
	if q := h.Quantile(0); !almost(q, 0.5, 1) {
		t.Errorf("p0 %v", q)
	}
}

func TestHistogramOverflowAndNegative(t *testing.T) {
	h := NewHistogram(1, 10)
	h.Add(-5)
	h.Add(1e9)
	if h.N() != 2 {
		t.Fatalf("N = %d", h.N())
	}
	if q := h.Quantile(1); q != 10 {
		t.Errorf("overflow quantile = %v, want upper bound 10", q)
	}
}

func TestHistogramMeanExact(t *testing.T) {
	h := NewHistogram(10, 5)
	h.Add(1)
	h.Add(2)
	if !almost(h.Mean(), 1.5, 1e-12) {
		t.Errorf("mean %v should be exact, not binned", h.Mean())
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(0, 10)
}

func TestThroughput(t *testing.T) {
	var tp Throughput
	tp.Record(30)
	tp.Advance(10)
	if !almost(tp.Rate(), 3, 1e-12) {
		t.Errorf("rate %v", tp.Rate())
	}
	var empty Throughput
	if empty.Rate() != 0 {
		t.Error("empty throughput should be 0")
	}
}

func TestPerPort(t *testing.T) {
	pp := NewPerPort(4)
	pp.Add(0, 10)
	pp.Add(0, 20)
	pp.Add(3, 5)
	means := pp.Means()
	if !almost(means[0], 15, 1e-12) || means[1] != 0 || !almost(means[3], 5, 1e-12) {
		t.Errorf("means %v", means)
	}
	if pp.All.N() != 3 {
		t.Errorf("aggregate N %d", pp.All.N())
	}
}

func TestJainIndex(t *testing.T) {
	if j := JainIndex([]float64{1, 1, 1, 1}); !almost(j, 1, 1e-12) {
		t.Errorf("equal flows: %v", j)
	}
	if j := JainIndex([]float64{1, 0, 0, 0}); !almost(j, 0.25, 1e-12) {
		t.Errorf("one flow: %v", j)
	}
	if j := JainIndex(nil); j != 1 {
		t.Errorf("empty: %v", j)
	}
	if j := JainIndex([]float64{0, 0}); j != 1 {
		t.Errorf("all zero: %v", j)
	}
}

func TestJainIndexRange(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := prng.New(seed)
		xs := make([]float64, 1+src.Intn(32))
		for i := range xs {
			xs[i] = src.Float64()
		}
		j := JainIndex(xs)
		return j >= 1/float64(len(xs))-1e-9 && j <= 1+1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxMinRatio(t *testing.T) {
	if r := MaxMinRatio([]float64{2, 4, 8}); !almost(r, 4, 1e-12) {
		t.Errorf("ratio %v", r)
	}
	if r := MaxMinRatio([]float64{0, 1}); !math.IsInf(r, 1) {
		t.Errorf("zero min should be Inf, got %v", r)
	}
	if r := MaxMinRatio([]float64{0, 0}); r != 1 {
		t.Errorf("all zero should be 1, got %v", r)
	}
	if r := MaxMinRatio(nil); r != 1 {
		t.Errorf("empty should be 1, got %v", r)
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median %v", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); !almost(m, 2.5, 1e-12) {
		t.Errorf("even median %v", m)
	}
	if m := Median(nil); m != 0 {
		t.Errorf("empty median %v", m)
	}
	xs := []float64{5, 1, 9}
	Median(xs)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 9 {
		t.Error("Median mutated its input")
	}
}

func TestHistogramNonFiniteObservations(t *testing.T) {
	// NaN and ±Inf must not panic (int(NaN) is the most negative int on
	// amd64, a guaranteed out-of-range bin index without the guards) and
	// must follow the documented semantics: NaN discarded, +Inf to
	// overflow, -Inf to bin 0.
	h := NewHistogram(2, 4)
	h.Add(math.NaN())
	if h.N() != 0 {
		t.Errorf("NaN counted: N = %d", h.N())
	}
	h.Add(math.Inf(1))
	if h.N() != 1 || h.overflow != 1 {
		t.Errorf("+Inf: N=%d overflow=%d, want 1/1", h.N(), h.overflow)
	}
	h.Add(math.Inf(-1))
	if h.bins[0] != 1 {
		t.Errorf("-Inf should clamp to bin 0, bins[0]=%d", h.bins[0])
	}
	// Upper-edge value: exactly at the bound is overflow, just below is
	// the last bin even if x/binWidth rounds up.
	h2 := NewHistogram(2, 4)
	h2.Add(8)
	if h2.overflow != 1 {
		t.Errorf("at-bound value should overflow, overflow=%d", h2.overflow)
	}
	h2.Add(math.Nextafter(8, 0))
	if h2.bins[3] != 1 {
		t.Errorf("just-below-bound value should land in last bin, bins=%v", h2.bins)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := NewHistogram(2, 4)
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
	if q := h.Quantile(math.NaN()); q != 0 {
		t.Errorf("empty histogram NaN quantile = %v, want 0", q)
	}
	h.Add(1)
	h.Add(3)
	h.Add(5)
	lo, hi := h.Quantile(0), h.Quantile(1)
	if q := h.Quantile(-1); q != lo {
		t.Errorf("q<0 should clamp to 0: %v vs %v", q, lo)
	}
	if q := h.Quantile(2); q != hi {
		t.Errorf("q>1 should clamp to 1: %v vs %v", q, hi)
	}
	if q := h.Quantile(math.NaN()); q != lo {
		t.Errorf("NaN q should clamp to 0: %v vs %v", q, lo)
	}
}

func TestThroughputZeroCycles(t *testing.T) {
	var tp Throughput
	tp.Record(10)
	if r := tp.Rate(); r != 0 {
		t.Errorf("zero-cycle window rate = %v, want 0", r)
	}
	tp.Advance(5)
	if r := tp.Rate(); !almost(r, 2, 1e-12) {
		t.Errorf("rate = %v, want 2", r)
	}
}

func TestSummaryEmptyMinMax(t *testing.T) {
	var s Summary
	if s.Min() != 0 || s.Max() != 0 {
		t.Fatalf("empty summary min/max = %v/%v, want 0/0", s.Min(), s.Max())
	}
	s.Add(-3)
	if s.Min() != -3 || s.Max() != -3 {
		t.Fatalf("single observation min/max = %v/%v", s.Min(), s.Max())
	}
}
