package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Disk entry format (everything big-endian):
//
//	offset  size  field
//	0       8     magic "HRSTORE1"
//	8       8     payload length N
//	16      N     payload
//	16+N    32    SHA-256 of payload
//
// The trailing digest makes truncation, bit rot, and torn writes all
// detectable with one pass; entries are immutable once renamed into
// place, so a valid read is valid forever.
var diskMagic = [8]byte{'H', 'R', 'S', 'T', 'O', 'R', 'E', '1'}

const diskOverhead = 8 + 8 + sha256.Size

// FS is the filesystem seam the disk layer runs on. The production
// implementation is the OS; tests substitute failing variants to prove
// every disk fault degrades to a cache miss or a lost write, never to
// a failed computation.
type FS interface {
	ReadFile(name string) ([]byte, error)
	MkdirAll(path string) error
	// CreateTemp creates an exclusively-named temp file in dir, like
	// os.CreateTemp(dir, pattern).
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// File is the writable handle CreateTemp returns.
type File interface {
	io.Writer
	io.Closer
	Name() string
}

// osFS is the real filesystem.
type osFS struct{}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) MkdirAll(path string) error           { return os.MkdirAll(path, 0o755) }
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (s *Store) initDir() error {
	return s.opts.FS.MkdirAll(s.dir)
}

// path shards entries over 256 subdirectories by the first key byte so
// huge sweeps don't pile tens of thousands of files into one directory.
func (s *Store) path(key Key) string {
	h := key.String()
	return filepath.Join(s.dir, h[:2], h+".res")
}

// diskGet loads and validates the entry. Every failure mode — missing,
// unreadable, truncated, wrong magic, wrong length, wrong digest — is a
// miss; invalid files are deleted (best-effort) so they are rebuilt
// cleanly.
func (s *Store) diskGet(key Key) ([]byte, bool) {
	if s.dir == "" {
		return nil, false
	}
	p := s.path(key)
	raw, err := s.opts.FS.ReadFile(p)
	if err != nil {
		return nil, false
	}
	data, err := decodeEntry(raw)
	if err != nil {
		s.corrupt.Add(1)
		s.opts.FS.Remove(p)
		return nil, false
	}
	return data, true
}

// encodeEntry frames a payload in the disk entry format. It is the
// exact inverse of decodeEntry: the framing is canonical, so for any
// payload decodeEntry(encodeEntry(p)) == p, and any accepted file
// re-encodes byte-identically.
func encodeEntry(data []byte) []byte {
	out := make([]byte, 0, diskOverhead+len(data))
	out = append(out, diskMagic[:]...)
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(data)))
	out = append(out, n[:]...)
	out = append(out, data...)
	sum := sha256.Sum256(data)
	return append(out, sum[:]...)
}

func decodeEntry(raw []byte) ([]byte, error) {
	if len(raw) < diskOverhead {
		return nil, fmt.Errorf("store: entry too short (%d bytes)", len(raw))
	}
	if !bytes.Equal(raw[:8], diskMagic[:]) {
		return nil, fmt.Errorf("store: bad magic %q", raw[:8])
	}
	n := binary.BigEndian.Uint64(raw[8:16])
	if n != uint64(len(raw)-diskOverhead) {
		return nil, fmt.Errorf("store: length header %d, have %d payload bytes", n, len(raw)-diskOverhead)
	}
	payload := raw[16 : 16+n]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], raw[16+n:]) {
		return nil, fmt.Errorf("store: payload digest mismatch")
	}
	return payload, nil
}

// diskPut writes the entry atomically: encode to a temp file in the
// destination directory, then rename into place. Readers therefore see
// either no file or a complete one; a crash mid-write leaves only a
// temp file that never matches a key.
func (s *Store) diskPut(key Key, data []byte) error {
	if s.dir == "" {
		return nil
	}
	p := s.path(key)
	if err := s.opts.FS.MkdirAll(filepath.Dir(p)); err != nil {
		return err
	}
	tmp, err := s.opts.FS.CreateTemp(filepath.Dir(p), "tmp-*")
	if err != nil {
		return err
	}
	defer s.opts.FS.Remove(tmp.Name()) // no-op after successful rename

	if _, err := tmp.Write(encodeEntry(data)); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return s.opts.FS.Rename(tmp.Name(), p)
}
