package store

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// faultFS wraps the real filesystem with switchable failure modes, the
// injectable seam Options.FS exists for. Toggles are plain bools set
// before the operation under test; the store is exercised from a
// single goroutine in these tests.
type faultFS struct {
	osFS
	failRead   bool // ReadFile errors (I/O error on load)
	failWrite  bool // File.Write errors (ENOSPC mid-write)
	failCreate bool // CreateTemp errors (ENOSPC / read-only dir)
	failRename bool // Rename errors (torn publish)
}

var errInjected = errors.New("injected fault: no space left on device")

func (f *faultFS) ReadFile(name string) ([]byte, error) {
	if f.failRead {
		return nil, errInjected
	}
	return f.osFS.ReadFile(name)
}

func (f *faultFS) CreateTemp(dir, pattern string) (File, error) {
	if f.failCreate {
		return nil, errInjected
	}
	file, err := f.osFS.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *faultFS) Rename(oldpath, newpath string) error {
	if f.failRename {
		return errInjected
	}
	return f.osFS.Rename(oldpath, newpath)
}

type faultFile struct {
	File
	fs *faultFS
}

func (f *faultFile) Write(p []byte) (int, error) {
	if f.fs.failWrite {
		// Short write, the ENOSPC shape: some bytes land, then the
		// device is full.
		if len(p) > 1 {
			f.File.Write(p[:1])
		}
		return 1, errInjected
	}
	return f.File.Write(p)
}

// mustCompute runs GetOrCompute with a trivial computation and fails
// the test on error.
func mustCompute(t *testing.T, s *Store, key Key, payload []byte) (data []byte, hit bool) {
	t.Helper()
	data, hit, err := s.GetOrCompute(context.Background(), key, func(context.Context) ([]byte, error) {
		return payload, nil
	})
	if err != nil {
		t.Fatalf("GetOrCompute: %v", err)
	}
	if !bytes.Equal(data, payload) {
		t.Fatalf("GetOrCompute returned %q, want %q", data, payload)
	}
	return data, hit
}

// resFiles returns the persisted entry files under dir (ignoring temp
// files, which are allowed to linger after an injected crash).
func resFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(path, ".res") {
			out = append(out, path)
		}
		return nil
	})
	return out
}

// TestDiskWriteFaultDegradesToComputeWithoutCache: when the disk is
// full (write, create, or rename fails), the computation still returns
// its result, only persistence is lost: the write error is counted, no
// partial entry is published, and a fresh store over the same directory
// simply recomputes.
func TestDiskWriteFaultDegradesToComputeWithoutCache(t *testing.T) {
	for _, mode := range []string{"write", "create", "rename"} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			fs := &faultFS{}
			s, err := Open(dir, Options{FS: fs, MemEntries: -1}) // no memory front: disk is the only cache
			if err != nil {
				t.Fatal(err)
			}
			key, err := s.KeyOf("test", map[string]string{"mode": mode})
			if err != nil {
				t.Fatal(err)
			}
			switch mode {
			case "write":
				fs.failWrite = true
			case "create":
				fs.failCreate = true
			case "rename":
				fs.failRename = true
			}

			if _, hit := mustCompute(t, s, key, []byte("payload-"+mode)); hit {
				t.Fatal("first computation reported a cache hit")
			}
			if got := s.Stats().WriteErrors; got != 1 {
				t.Fatalf("WriteErrors = %d, want 1", got)
			}
			if files := resFiles(t, dir); len(files) != 0 {
				t.Fatalf("failed write published entry files: %v", files)
			}

			// The store keeps working: with the fault healed, the same
			// key recomputes (the failed write cached nothing) and then
			// persists.
			fs.failWrite, fs.failCreate, fs.failRename = false, false, false
			if _, hit := mustCompute(t, s, key, []byte("payload-"+mode)); hit {
				t.Fatal("entry was cached despite the injected write fault")
			}
			if _, hit := mustCompute(t, s, key, []byte("payload-"+mode)); !hit {
				t.Fatal("healed write did not persist the entry")
			}
		})
	}
}

// TestDiskReadFaultIsAMiss: an I/O error loading a valid entry is a
// cache miss — the job recomputes and succeeds — and the entry is
// readable again once the fault clears.
func TestDiskReadFaultIsAMiss(t *testing.T) {
	dir := t.TempDir()
	fs := &faultFS{}
	s, err := Open(dir, Options{FS: fs, MemEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	key, err := s.KeyOf("test", "read-fault")
	if err != nil {
		t.Fatal(err)
	}
	mustCompute(t, s, key, []byte("persisted"))
	if _, hit := mustCompute(t, s, key, []byte("persisted")); !hit {
		t.Fatal("healthy disk read was not a hit")
	}

	fs.failRead = true
	if _, hit := mustCompute(t, s, key, []byte("persisted")); hit {
		t.Fatal("unreadable entry reported as a hit")
	}
	// The unreadable file must NOT have been deleted as corrupt: the
	// bytes on disk are fine, only the read failed.
	if got := s.Stats().Corrupt; got != 0 {
		t.Fatalf("read fault counted as corruption: Corrupt = %d", got)
	}

	fs.failRead = false
	if _, hit := mustCompute(t, s, key, []byte("persisted")); !hit {
		t.Fatal("entry lost after transient read fault")
	}
}

// TestDiskFaultsNeverFailGetOrCompute is the degradation contract in
// one sweep: with every fault injected at once, GetOrCompute still
// returns the computed payload with a nil error.
func TestDiskFaultsNeverFailGetOrCompute(t *testing.T) {
	fs := &faultFS{failRead: true, failWrite: true, failCreate: true, failRename: true}
	s, err := Open(t.TempDir(), Options{FS: fs, MemEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i, payload := range []string{"a", "b", "c"} {
		key, err := s.KeyOf("test", i)
		if err != nil {
			t.Fatal(err)
		}
		mustCompute(t, s, key, []byte(payload))
	}
	st := s.Stats()
	if st.Misses != 3 || st.WriteErrors != 3 {
		t.Fatalf("stats = %+v, want 3 misses and 3 write errors", st)
	}
}
