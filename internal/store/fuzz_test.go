package store

import (
	"bytes"
	"testing"
)

// FuzzEntryFraming pins the disk framing's resilience contract: a fresh
// entry round-trips exactly, while any truncation or bit flip is a
// detected miss — decodeEntry must never panic and never return a wrong
// payload, because diskGet treats its error as "rebuild this entry" and
// its success as gospel.
func FuzzEntryFraming(f *testing.F) {
	f.Add([]byte{}, uint16(0), uint16(0))
	f.Add([]byte("hello hirise"), uint16(3), uint16(40))
	f.Add(bytes.Repeat([]byte{0xA5}, 1024), uint16(100), uint16(8*20+1))
	f.Add(append(append([]byte{}, diskMagic[:]...), make([]byte, 40)...), uint16(1), uint16(64))
	f.Fuzz(func(t *testing.T, payload []byte, cut, flip uint16) {
		// Round-trip: encode then decode is the identity.
		enc := encodeEntry(payload)
		dec, err := decodeEntry(enc)
		if err != nil {
			t.Fatalf("fresh entry rejected: %v", err)
		}
		if !bytes.Equal(dec, payload) {
			t.Fatalf("round-trip changed the payload: %q -> %q", payload, dec)
		}

		// Any strict truncation (a torn write, a crashed rename source)
		// must be rejected, never misread.
		if n := int(cut)%len(enc) + 1; n <= len(enc) {
			if d, err := decodeEntry(enc[:len(enc)-n]); err == nil {
				t.Fatalf("accepted entry truncated by %d bytes (payload %q)", n, d)
			}
		}

		// Any single flipped bit — magic, length, payload, or digest —
		// must be rejected.
		bit := int(flip) % (len(enc) * 8)
		mut := append([]byte(nil), enc...)
		mut[bit/8] ^= 1 << (bit % 8)
		if d, err := decodeEntry(mut); err == nil {
			t.Fatalf("accepted entry with bit %d flipped (payload %q)", bit, d)
		}

		// Arbitrary bytes as a file never panic the decoder, and anything
		// it does accept re-encodes byte-identically (the framing is
		// canonical, so there are no two files for one payload).
		if d, err := decodeEntry(payload); err == nil {
			if !bytes.Equal(encodeEntry(d), payload) {
				t.Fatalf("accepted non-canonical entry %q", payload)
			}
		}
	})
}
