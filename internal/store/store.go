// Package store is a content-addressed, disk-persistent result store for
// deterministic computations. The repository's simulations are pure
// functions of (experiment kind, full configuration, seed derivation,
// model version) — the determinism the pool/sim layers enforce — so a
// completed result can be reused forever, shared between processes, and
// served to many clients without re-simulation.
//
// The store is three layers:
//
//   - an in-memory LRU front, bounded by entry count and total bytes;
//   - a singleflight layer that deduplicates identical in-flight
//     computations — concurrent requests for the same key run the
//     computation once and share its result, and the computation is
//     cancelled only when every waiter has gone away;
//   - a disk layer of checksummed, atomically-written entry files.
//     Loading is corruption-tolerant: a truncated, tampered-with, or
//     otherwise invalid entry is treated as a miss (and deleted), never
//     as a fatal error — the result is simply recomputed.
//
// Keys are SHA-256 over a canonical JSON encoding of (model version,
// kind, payload), so any change to the simulator's behaviour is a
// one-line bump of internal/version.Model away from invalidating every
// stale entry at once.
package store

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/reprolab/hirise/internal/version"
)

// Key addresses one result: the SHA-256 of its canonical identity.
type Key [sha256.Size]byte

// String returns the key as lowercase hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey parses the hex form produced by Key.String. It is how the
// serving layer turns a /store/{key} path element back into a key.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil {
		return k, fmt.Errorf("store: bad key %q: %w", s, err)
	}
	if len(b) != sha256.Size {
		return k, fmt.Errorf("store: bad key %q: %d bytes, want %d", s, len(b), sha256.Size)
	}
	copy(k[:], b)
	return k, nil
}

// Options tunes a Store.
type Options struct {
	// MemEntries bounds the in-memory LRU front by entry count
	// (default 256; negative disables the memory front).
	MemEntries int
	// MemBytes bounds the LRU front by total payload bytes
	// (default 64 MiB).
	MemBytes int64
	// ModelVersion is the model fingerprint folded into every key.
	// Empty selects version.Model, the package default. Tests use this
	// to prove that a fingerprint bump invalidates old entries.
	ModelVersion string
	// FS overrides the disk layer's filesystem (nil selects the real
	// one). It exists as a fault-injection seam: tests wrap the OS
	// filesystem with failing writes (ENOSPC) and reads to prove the
	// store degrades to compute-without-cache instead of failing jobs.
	FS FS
}

func (o Options) withDefaults() Options {
	if o.MemEntries == 0 {
		o.MemEntries = 256
	}
	if o.MemBytes == 0 {
		o.MemBytes = 64 << 20
	}
	if o.ModelVersion == "" {
		o.ModelVersion = version.Model
	}
	if o.FS == nil {
		o.FS = osFS{}
	}
	return o
}

// Stats counts store activity. Snapshot via Store.Stats.
type Stats struct {
	// MemHits and DiskHits count lookups served from each layer.
	MemHits, DiskHits int64
	// Misses counts lookups that ran the computation.
	Misses int64
	// Shared counts callers that joined another caller's in-flight
	// computation instead of starting their own.
	Shared int64
	// Corrupt counts disk entries rejected (and removed) by validation.
	Corrupt int64
	// WriteErrors counts failed disk writes (the result is still
	// returned to the caller; only persistence is lost).
	WriteErrors int64
}

// Store is a content-addressed result store. All methods are safe for
// concurrent use. Returned payloads are shared, immutable snapshots:
// callers must not modify them.
type Store struct {
	dir  string // "" = memory-only
	opts Options

	mu      sync.Mutex
	lru     *list.List // front = most recent; values are *entry
	byKey   map[Key]*list.Element
	memSize int64
	flight  map[Key]*call

	memHits, diskHits, misses, shared, corrupt, writeErrs atomic.Int64
}

type entry struct {
	key  Key
	data []byte
}

// call is one in-flight computation and its waiters.
type call struct {
	done    chan struct{}
	cancel  context.CancelFunc
	waiters int // guarded by Store.mu; 0 => cancel the computation
	data    []byte
	err     error
}

// Open returns a store rooted at dir, creating it if needed. An empty
// dir yields a memory-only store (no persistence). The directory may be
// shared by any number of Stores and processes — entries are immutable
// and written atomically, so concurrent writers at worst duplicate work.
func Open(dir string, opts Options) (*Store, error) {
	s := &Store{
		dir:    dir,
		opts:   opts.withDefaults(),
		lru:    list.New(),
		byKey:  map[Key]*list.Element{},
		flight: map[Key]*call{},
	}
	if dir != "" {
		if err := s.initDir(); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
	}
	return s, nil
}

// KeyOf derives the content address of a computation from its kind (a
// short namespace string, e.g. "experiment" or "loadsweep") and its
// payload — a JSON-marshalable value that captures every input that
// influences the result, and nothing that doesn't (worker counts,
// contexts, progress hooks). The store's model-version fingerprint is
// folded in, so behaviour changes invalidate old entries wholesale.
func (s *Store) KeyOf(kind string, payload any) (Key, error) {
	canonical := struct {
		Model   string `json:"model"`
		Kind    string `json:"kind"`
		Payload any    `json:"payload"`
	}{s.opts.ModelVersion, kind, payload}
	b, err := json.Marshal(canonical)
	if err != nil {
		return Key{}, fmt.Errorf("store: canonicalize %s key: %w", kind, err)
	}
	return sha256.Sum256(b), nil
}

// Get returns the cached payload for key, if present in memory or on
// disk, without ever computing anything.
func (s *Store) Get(key Key) ([]byte, bool) {
	if data, ok := s.memGet(key); ok {
		s.memHits.Add(1)
		return data, true
	}
	if data, ok := s.diskGet(key); ok {
		s.diskHits.Add(1)
		s.memPut(key, data)
		return data, true
	}
	return nil, false
}

// GetOrCompute returns the payload for key, computing it at most once
// across all concurrent callers. The returned bool reports whether the
// payload came from cache (memory or disk) rather than from running
// compute.
//
// compute receives a context that stays live while at least one caller
// is still waiting: a caller whose own ctx is cancelled detaches with
// ctx's error, and only when the last waiter detaches is the
// computation itself cancelled — one client giving up never aborts a
// result another client is still waiting for. On success the payload is
// written to the memory front and, best-effort, to disk (a disk write
// failure loses persistence, not the result).
func (s *Store) GetOrCompute(ctx context.Context, key Key, compute func(context.Context) ([]byte, error)) ([]byte, bool, error) {
	if data, ok := s.Get(key); ok {
		return data, true, nil
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
	}

	s.mu.Lock()
	if c, ok := s.flight[key]; ok {
		c.waiters++
		s.mu.Unlock()
		s.shared.Add(1)
		return s.wait(ctx, c)
	}
	cctx, cancel := context.WithCancel(context.Background())
	c := &call{done: make(chan struct{}), cancel: cancel, waiters: 1}
	s.flight[key] = c
	s.mu.Unlock()
	s.misses.Add(1)

	go func() {
		data, err := compute(cctx)
		if err == nil {
			s.memPut(key, data)
			if werr := s.diskPut(key, data); werr != nil {
				s.writeErrs.Add(1)
			}
		}
		s.mu.Lock()
		delete(s.flight, key)
		s.mu.Unlock()
		c.data, c.err = data, err
		close(c.done)
		cancel()
	}()
	return s.wait(ctx, c)
}

// wait blocks until the call completes or ctx is cancelled. A cancelled
// waiter detaches; the last detaching waiter cancels the computation.
func (s *Store) wait(ctx context.Context, c *call) ([]byte, bool, error) {
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	select {
	case <-c.done:
		if c.err != nil {
			return nil, false, c.err
		}
		return c.data, false, nil
	case <-ctxDone:
		s.mu.Lock()
		c.waiters--
		last := c.waiters == 0
		s.mu.Unlock()
		if last {
			c.cancel()
		}
		return nil, false, ctx.Err()
	}
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		MemHits:     s.memHits.Load(),
		DiskHits:    s.diskHits.Load(),
		Misses:      s.misses.Load(),
		Shared:      s.shared.Load(),
		Corrupt:     s.corrupt.Load(),
		WriteErrors: s.writeErrs.Load(),
	}
}

// memGet looks the key up in the LRU front, promoting it on hit.
func (s *Store) memGet(key Key) ([]byte, bool) {
	if s.opts.MemEntries < 0 {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byKey[key]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*entry).data, true
}

// memPut inserts the payload at the front of the LRU, evicting from the
// back until the count and byte bounds hold again.
func (s *Store) memPut(key Key, data []byte) {
	if s.opts.MemEntries < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byKey[key]; ok {
		s.memSize += int64(len(data)) - int64(len(el.Value.(*entry).data))
		el.Value.(*entry).data = data
		s.lru.MoveToFront(el)
	} else {
		s.byKey[key] = s.lru.PushFront(&entry{key: key, data: data})
		s.memSize += int64(len(data))
	}
	for s.lru.Len() > s.opts.MemEntries || s.memSize > s.opts.MemBytes {
		back := s.lru.Back()
		if back == nil || s.lru.Len() == 1 {
			break // always keep the entry just inserted
		}
		e := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.byKey, e.key)
		s.memSize -= int64(len(e.data))
	}
}
