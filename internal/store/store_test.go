package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/reprolab/hirise/internal/leakcheck"
)

func mustKey(t *testing.T, s *Store, kind string, payload any) Key {
	t.Helper()
	k, err := s.KeyOf(kind, payload)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func constCompute(data []byte, calls *atomic.Int64) func(context.Context) ([]byte, error) {
	return func(context.Context) ([]byte, error) {
		if calls != nil {
			calls.Add(1)
		}
		return data, nil
	}
}

func TestMissThenMemoryHit(t *testing.T) {
	s, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := mustKey(t, s, "test", map[string]int{"a": 1})
	var calls atomic.Int64
	want := []byte("result-bytes")

	got, hit, err := s.GetOrCompute(context.Background(), key, constCompute(want, &calls))
	if err != nil || hit || !bytes.Equal(got, want) {
		t.Fatalf("first call: got %q hit=%v err=%v", got, hit, err)
	}
	got, hit, err = s.GetOrCompute(context.Background(), key, constCompute(want, &calls))
	if err != nil || !hit || !bytes.Equal(got, want) {
		t.Fatalf("second call: got %q hit=%v err=%v", got, hit, err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	if st := s.Stats(); st.MemHits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 mem hit / 1 miss", st)
	}
}

func TestDiskPersistenceAcrossStores(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := mustKey(t, s1, "test", "persist-me")
	want := []byte("persisted payload \x00 with binary \xff bytes")
	if _, _, err := s1.GetOrCompute(context.Background(), key, constCompute(want, nil)); err != nil {
		t.Fatal(err)
	}

	// A fresh store over the same directory must serve the entry from
	// disk, byte-identical, without computing.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, hit, err := s2.GetOrCompute(context.Background(), key, func(context.Context) ([]byte, error) {
		t.Fatal("compute ran despite a valid disk entry")
		return nil, nil
	})
	if err != nil || !hit || !bytes.Equal(got, want) {
		t.Fatalf("disk reload: got %q hit=%v err=%v", got, hit, err)
	}
	if st := s2.Stats(); st.DiskHits != 1 {
		t.Fatalf("stats = %+v, want 1 disk hit", st)
	}
}

// TestCorruptEntriesRecompute proves the corruption-tolerance contract:
// a truncated, tampered-with, or garbage entry is never fatal — it is a
// miss that recomputes and heals the file.
func TestCorruptEntriesRecompute(t *testing.T) {
	corruptions := map[string]func([]byte) []byte{
		"truncated":   func(b []byte) []byte { return b[:len(b)/2] },
		"empty":       func([]byte) []byte { return nil },
		"bad magic":   func(b []byte) []byte { b[0] ^= 0xff; return b },
		"bad payload": func(b []byte) []byte { b[20] ^= 0x01; return b },
		"bad digest":  func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b },
		"garbage":     func([]byte) []byte { return []byte("not an entry at all") },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			key := mustKey(t, s, "test", name)
			want := []byte("the true result: " + name)
			if _, _, err := s.GetOrCompute(context.Background(), key, constCompute(want, nil)); err != nil {
				t.Fatal(err)
			}

			p := s.path(key)
			raw, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			// Fresh store (empty memory front) must detect the damage,
			// recompute, and return the right bytes with no error.
			s2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			var calls atomic.Int64
			got, hit, err := s2.GetOrCompute(context.Background(), key, constCompute(want, &calls))
			if err != nil {
				t.Fatalf("corrupt entry surfaced an error: %v", err)
			}
			if hit || calls.Load() != 1 || !bytes.Equal(got, want) {
				t.Fatalf("got %q hit=%v calls=%d, want recompute of %q", got, hit, calls.Load(), want)
			}
			if st := s2.Stats(); st.Corrupt != 1 {
				t.Fatalf("stats = %+v, want 1 corrupt", st)
			}

			// The healed entry must now load cleanly.
			s3, _ := Open(dir, Options{})
			if got, ok := s3.Get(key); !ok || !bytes.Equal(got, want) {
				t.Fatalf("entry not healed: got %q ok=%v", got, ok)
			}
		})
	}
}

// TestModelVersionBumpForcesRecompute is the cache-invalidation
// contract: bumping the model fingerprint must change every key, so
// stale results from an older simulator are never served.
func TestModelVersionBumpForcesRecompute(t *testing.T) {
	dir := t.TempDir()
	old, err := Open(dir, Options{ModelVersion: "model-test-1"})
	if err != nil {
		t.Fatal(err)
	}
	payload := struct {
		Experiment string
		Seed       uint64
	}{"table4", 1}
	oldKey := mustKey(t, old, "experiment", payload)
	if _, _, err := old.GetOrCompute(context.Background(), oldKey, constCompute([]byte("stale"), nil)); err != nil {
		t.Fatal(err)
	}

	bumped, err := Open(dir, Options{ModelVersion: "model-test-2"})
	if err != nil {
		t.Fatal(err)
	}
	newKey := mustKey(t, bumped, "experiment", payload)
	if newKey == oldKey {
		t.Fatal("model version bump did not change the key")
	}
	var calls atomic.Int64
	got, hit, err := bumped.GetOrCompute(context.Background(), newKey, constCompute([]byte("fresh"), &calls))
	if err != nil || hit || calls.Load() != 1 || string(got) != "fresh" {
		t.Fatalf("bumped store served %q hit=%v calls=%d err=%v, want recompute", got, hit, calls.Load(), err)
	}

	// The old entry is untouched — rolling back the fingerprint rolls
	// back to the old results.
	if got, ok := old.Get(oldKey); !ok || string(got) != "stale" {
		t.Fatalf("old entry lost: %q ok=%v", got, ok)
	}
}

func TestDefaultModelVersionIsPackageVersion(t *testing.T) {
	a, _ := Open("", Options{})
	b, _ := Open("", Options{ModelVersion: "something-else"})
	ka := mustKey(t, a, "k", 1)
	kb := mustKey(t, b, "k", 1)
	if ka == kb {
		t.Fatal("explicit model version did not alter the key")
	}
}

// TestSingleflightDedup proves identical concurrent computations
// collapse to one: N callers, one compute, N identical results.
func TestSingleflightDedup(t *testing.T) {
	leakcheck.Check(t)
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := mustKey(t, s, "test", "dedup")

	var calls atomic.Int64
	gate := make(chan struct{})
	compute := func(context.Context) ([]byte, error) {
		calls.Add(1)
		<-gate // hold every caller in flight
		return []byte("shared"), nil
	}

	const n = 16
	var wg sync.WaitGroup
	results := make([][]byte, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = s.GetOrCompute(context.Background(), key, compute)
		}(i)
	}
	// Let the callers pile onto the flight before releasing it. The
	// Shared counter converging to n-1 means all have joined.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Shared < n-1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil || string(results[i]) != "shared" {
			t.Fatalf("caller %d: %q err=%v", i, results[i], errs[i])
		}
	}
	if st := s.Stats(); st.Shared != n-1 {
		t.Fatalf("stats = %+v, want %d shared", st, n-1)
	}
}

// TestCancelledWaiterDoesNotAbortOthers: one caller giving up must not
// cancel a computation another caller still wants.
func TestCancelledWaiterDoesNotAbortOthers(t *testing.T) {
	leakcheck.Check(t)
	s, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := mustKey(t, s, "test", "waiters")

	gate := make(chan struct{})
	computeCancelled := make(chan struct{}, 1)
	compute := func(cctx context.Context) ([]byte, error) {
		select {
		case <-gate:
			return []byte("done"), nil
		case <-cctx.Done():
			computeCancelled <- struct{}{}
			return nil, cctx.Err()
		}
	}

	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	type res struct {
		data []byte
		err  error
	}
	r1 := make(chan res, 1)
	go func() {
		d, _, err := s.GetOrCompute(ctx1, key, compute)
		r1 <- res{d, err}
	}()
	// Wait until caller 1 is the in-flight leader.
	waitFlight(t, s, key)

	r2 := make(chan res, 1)
	go func() {
		d, _, err := s.GetOrCompute(context.Background(), key, compute)
		r2 <- res{d, err}
	}()
	waitShared(t, s, 1)

	cancel1() // caller 1 detaches; computation must keep running
	got1 := <-r1
	if !errors.Is(got1.err, context.Canceled) {
		t.Fatalf("cancelled caller got %q err=%v, want context.Canceled", got1.data, got1.err)
	}
	select {
	case <-computeCancelled:
		t.Fatal("computation was cancelled while a waiter remained")
	case <-time.After(50 * time.Millisecond):
	}

	close(gate)
	got2 := <-r2
	if got2.err != nil || string(got2.data) != "done" {
		t.Fatalf("surviving caller got %q err=%v", got2.data, got2.err)
	}
}

// TestLastWaiterCancelsComputation: when every caller has gone away the
// computation's context must be cancelled so its workers are freed.
func TestLastWaiterCancelsComputation(t *testing.T) {
	leakcheck.Check(t)
	s, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := mustKey(t, s, "test", "abandon")

	computeCancelled := make(chan struct{})
	compute := func(cctx context.Context) ([]byte, error) {
		<-cctx.Done()
		close(computeCancelled)
		return nil, cctx.Err()
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := s.GetOrCompute(ctx, key, compute)
		done <- err
	}()
	waitFlight(t, s, key)
	cancel()

	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("caller error = %v, want context.Canceled", err)
	}
	select {
	case <-computeCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("computation context was never cancelled after the last waiter left")
	}
}

func TestComputeErrorNotCached(t *testing.T) {
	s, _ := Open("", Options{})
	key := mustKey(t, s, "test", "err")
	boom := errors.New("boom")
	if _, _, err := s.GetOrCompute(context.Background(), key, func(context.Context) ([]byte, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failure must not be cached: the next call computes again.
	got, hit, err := s.GetOrCompute(context.Background(), key, constCompute([]byte("ok"), nil))
	if err != nil || hit || string(got) != "ok" {
		t.Fatalf("after failure: %q hit=%v err=%v", got, hit, err)
	}
}

func TestLRUEvictionFallsBackToDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MemEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]Key, 4)
	for i := range keys {
		keys[i] = mustKey(t, s, "test", i)
		if _, _, err := s.GetOrCompute(context.Background(), keys[i], constCompute([]byte(fmt.Sprintf("v%d", i)), nil)); err != nil {
			t.Fatal(err)
		}
	}
	// keys[0] and keys[1] were evicted from memory but live on disk.
	before := s.Stats()
	got, ok := s.Get(keys[0])
	if !ok || string(got) != "v0" {
		t.Fatalf("evicted entry lost: %q ok=%v", got, ok)
	}
	if after := s.Stats(); after.DiskHits != before.DiskHits+1 {
		t.Fatalf("expected a disk hit for the evicted key: %+v -> %+v", before, after)
	}
}

func TestMemBytesBound(t *testing.T) {
	s, err := Open("", Options{MemEntries: 100, MemBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("x"), 80)
	k1 := mustKey(t, s, "test", "big1")
	k2 := mustKey(t, s, "test", "big2")
	s.GetOrCompute(context.Background(), k1, constCompute(big, nil))
	s.GetOrCompute(context.Background(), k2, constCompute(big, nil))
	if _, ok := s.Get(k1); ok {
		t.Fatal("byte bound did not evict the older entry")
	}
	if _, ok := s.Get(k2); !ok {
		t.Fatal("most recent entry was evicted")
	}
}

func TestKeyOfIsStableAndSensitive(t *testing.T) {
	s, _ := Open("", Options{})
	type payload struct {
		ID   string
		Seed uint64
	}
	a1 := mustKey(t, s, "experiment", payload{"table4", 1})
	a2 := mustKey(t, s, "experiment", payload{"table4", 1})
	b := mustKey(t, s, "experiment", payload{"table4", 2})
	c := mustKey(t, s, "loadsweep", payload{"table4", 1})
	if a1 != a2 {
		t.Fatal("identical payloads hashed differently")
	}
	if a1 == b || a1 == c {
		t.Fatal("distinct payload/kind collided")
	}
}

func TestTempFilesNotVisibleAsEntries(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, Options{})
	key := mustKey(t, s, "test", "atomic")
	s.GetOrCompute(context.Background(), key, constCompute([]byte("v"), nil))
	matches, _ := filepath.Glob(filepath.Join(dir, "*", "tmp-*"))
	if len(matches) != 0 {
		t.Fatalf("leftover temp files: %v", matches)
	}
}

func waitFlight(t *testing.T, s *Store, key Key) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		_, ok := s.flight[key]
		s.mu.Unlock()
		if ok {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("computation never became in-flight")
}

func waitShared(t *testing.T, s *Store, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Shared < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Stats().Shared < n {
		t.Fatalf("never reached %d shared waiters", n)
	}
}
