package tele

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WriteNDJSON serializes the samplers' series as newline-delimited
// JSON, one object per (run, series) pair:
//
//	{"run":0,"series":"sim.packets.delivered","kind":"counter",
//	 "window":256,"samples":40,"values":[12,15,...]}
//
// runs indexes the samplers (e.g. one per sweep point); nil entries
// are skipped, so a sparse sweep keeps stable run indices. Counter
// values are per-window deltas, gauge values window-close snapshots;
// "window" is the post-decimation cycles-per-sample. Non-finite gauge
// samples serialize as null. Lines are emitted in run order and, per
// run, in series registration order, so output is deterministic.
func WriteNDJSON(w io.Writer, runs []*Sampler) error {
	bw := bufio.NewWriter(w)
	for run, s := range runs {
		if s == nil {
			continue
		}
		for _, t := range s.tracks {
			fmt.Fprintf(bw, `{"run":%d,"series":%q,"kind":%q,"window":%d,"samples":%d,"values":[`,
				run, t.name, t.kind.String(), s.window, len(t.vals))
			for i, v := range t.vals {
				if i > 0 {
					bw.WriteByte(',')
				}
				if math.IsNaN(v) || math.IsInf(v, 0) {
					bw.WriteString("null")
				} else {
					bw.Write(strconv.AppendFloat(nil, v, 'g', -1, 64))
				}
			}
			if _, err := bw.WriteString("]}\n"); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ndjsonLine mirrors one WriteNDJSON output object for validation.
// Pointer fields distinguish "absent" from zero values.
type ndjsonLine struct {
	Run     *int       `json:"run"`
	Series  *string    `json:"series"`
	Kind    *string    `json:"kind"`
	Window  *int64     `json:"window"`
	Samples *int       `json:"samples"`
	Values  []*float64 `json:"values"`
}

// ValidateNDJSON structurally checks a telemetry NDJSON stream as
// produced by WriteNDJSON and returns the total number of samples
// seen. Every line must be a JSON object carrying a non-negative run,
// a non-empty series name, kind "counter" or "gauge", a positive
// window, and a samples count equal to len(values). Duplicate
// (run, series) pairs are rejected. Null values (non-finite gauges)
// are allowed.
func ValidateNDJSON(r io.Reader) (samples int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	seen := make(map[string]bool)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			return samples, fmt.Errorf("line %d: empty line", lineNo)
		}
		var l ndjsonLine
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&l); err != nil {
			return samples, fmt.Errorf("line %d: %w", lineNo, err)
		}
		switch {
		case l.Run == nil || *l.Run < 0:
			return samples, fmt.Errorf("line %d: missing or negative run", lineNo)
		case l.Series == nil || *l.Series == "":
			return samples, fmt.Errorf("line %d: missing series name", lineNo)
		case l.Kind == nil || (*l.Kind != "counter" && *l.Kind != "gauge"):
			return samples, fmt.Errorf("line %d: bad kind %v", lineNo, deref(l.Kind))
		case l.Window == nil || *l.Window <= 0:
			return samples, fmt.Errorf("line %d: missing or non-positive window", lineNo)
		case l.Samples == nil || *l.Samples != len(l.Values):
			return samples, fmt.Errorf("line %d: samples count %v != %d values",
				lineNo, derefInt(l.Samples), len(l.Values))
		}
		key := fmt.Sprintf("%d\x00%s", *l.Run, *l.Series)
		if seen[key] {
			return samples, fmt.Errorf("line %d: duplicate series %q for run %d", lineNo, *l.Series, *l.Run)
		}
		seen[key] = true
		samples += len(l.Values)
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	if lineNo == 0 {
		return 0, fmt.Errorf("empty telemetry stream")
	}
	return samples, nil
}

func deref(s *string) any {
	if s == nil {
		return "<missing>"
	}
	return *s
}

func derefInt(i *int) any {
	if i == nil {
		return "<missing>"
	}
	return *i
}
