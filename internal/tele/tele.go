// Package tele is the time-series telemetry plane: a fixed-cadence
// windowed sampler that turns the simulators' per-cycle activity into
// bounded-memory counter and gauge tracks.
//
// Where internal/obs collapses a run into aggregates (total delivered,
// latency histogram), tele keeps the time axis: every WindowCycles
// cycles the sampler closes a window and records, per registered
// series, either the counter delta over the window or a gauge snapshot
// at its close. The resulting tracks expose ramps, VOQ fill, fault
// transients, and convergence — dynamics the aggregates hide.
//
// Memory is bounded at any run length by power-of-two decimation: when
// the number of stored windows reaches MaxWindows, adjacent window
// pairs are merged in place (counter deltas sum; gauges keep the later
// snapshot) and the window length doubles. A sampler therefore holds
// at most MaxWindows samples per series forever, and every stored
// window always covers WindowCycles << k cycles for a single k shared
// by all series.
//
// Like obs, everything is nil-safe: every method on a nil *Sampler or
// nil *Counter is a no-op, so instrumented hot loops pay one nil check
// and zero allocations when telemetry is disabled.
//
// The package is deliberately single-writer: the simulation loop owns
// the sampler. Concurrent readers (e.g. a serving layer snapshotting
// live job telemetry) must synchronize externally.
package tele

import "math"

// Default sampling parameters, used when NewSampler is given zero
// values.
const (
	// DefaultWindowCycles is the initial window length.
	DefaultWindowCycles = 256
	// DefaultMaxWindows is the per-series sample bound; reaching it
	// triggers decimation. Must be even so pairwise merging is exact.
	DefaultMaxWindows = 512
)

// mserMinWindows is the shortest series MSER will judge. Below this
// the variance estimates are too noisy to call anything converged.
const mserMinWindows = 8

// Kind distinguishes how a series turns raw values into samples.
type Kind uint8

const (
	// KindCounter records the increase of a monotonic counter over
	// each window (a rate track).
	KindCounter Kind = iota
	// KindGauge records an instantaneous snapshot at each window
	// close (a level track).
	KindGauge
)

// String returns the NDJSON wire name of the kind.
func (k Kind) String() string {
	if k == KindGauge {
		return "gauge"
	}
	return "counter"
}

// Counter is a monotonic event counter handle sampled by window
// deltas. Inc on a nil Counter is a no-op, so call sites need no
// telemetry-enabled branch.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current cumulative count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// track is one registered series and its sample storage.
type track struct {
	name    string
	kind    Kind
	counter *Counter       // KindCounter via handle
	cfn     func() int64   // KindCounter via callback (exactly one of counter/cfn set)
	gfn     func() float64 // KindGauge callback
	last    int64          // counter value at the previous window close
	vals    []float64      // one sample per stored window, capacity maxW
}

// Series is an exported snapshot of one track, as produced by
// Sampler.Series and consumed by the NDJSON/Chrome writers.
type Series struct {
	Name   string
	Kind   Kind
	Window int64 // cycles covered by each value after decimation
	Values []float64
}

// Sampler collects windowed samples from registered series. Create
// with NewSampler, register series before the first Tick, then call
// Tick once per simulated cycle (or logical tick) with the count of
// completed cycles.
type Sampler struct {
	window int64 // current window length in cycles (doubles on decimation)
	maxW   int   // sample bound per series, even
	next   int64 // cycle count at which the open window closes
	n      int   // stored windows per series
	decims int   // decimation generations so far
	tracks []*track
	byName map[string]*track
}

// NewSampler returns a sampler with the given initial window length in
// cycles and per-series sample bound. Zero or negative arguments pick
// DefaultWindowCycles / DefaultMaxWindows; maxWindows is rounded up to
// an even number of at least 4 so pairwise decimation stays exact.
func NewSampler(windowCycles int64, maxWindows int) *Sampler {
	if windowCycles <= 0 {
		windowCycles = DefaultWindowCycles
	}
	if maxWindows <= 0 {
		maxWindows = DefaultMaxWindows
	}
	if maxWindows < 4 {
		maxWindows = 4
	}
	if maxWindows%2 != 0 {
		maxWindows++
	}
	return &Sampler{
		window: windowCycles,
		maxW:   maxWindows,
		next:   windowCycles,
		byName: make(map[string]*track),
	}
}

func (s *Sampler) register(t *track) *track {
	t.vals = make([]float64, 0, s.maxW)
	s.tracks = append(s.tracks, t)
	s.byName[t.name] = t
	return t
}

// Counter registers (or returns the existing) counter series and hands
// back its increment handle. On a nil sampler it returns nil, which is
// itself a valid no-op handle — the disabled path needs no branches.
// Registering after windows have closed would misalign the series, so
// register before the first Tick.
func (s *Sampler) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	if t, ok := s.byName[name]; ok {
		if t.kind != KindCounter || t.counter == nil {
			panic("tele: series " + name + " already registered with a different type")
		}
		return t.counter
	}
	t := s.register(&track{name: name, kind: KindCounter, counter: &Counter{}})
	return t.counter
}

// CounterFunc registers a counter series sampled by calling fn at each
// window close; fn must be monotonic non-decreasing (e.g. an
// atomically incremented total). No-op on a nil sampler.
func (s *Sampler) CounterFunc(name string, fn func() int64) {
	if s == nil || fn == nil {
		return
	}
	if _, ok := s.byName[name]; ok {
		panic("tele: series " + name + " registered twice")
	}
	s.register(&track{name: name, kind: KindCounter, cfn: fn})
}

// GaugeFunc registers a gauge series snapshotted by calling fn at each
// window close. No-op on a nil sampler.
func (s *Sampler) GaugeFunc(name string, fn func() float64) {
	if s == nil || fn == nil {
		return
	}
	if _, ok := s.byName[name]; ok {
		panic("tele: series " + name + " registered twice")
	}
	s.register(&track{name: name, kind: KindGauge, gfn: fn})
}

// Tick advances the sampler to the given completed-cycle count and
// reports whether a window closed. Call once per cycle with cycle+1;
// on the nil sampler and on mid-window cycles it is a single compare.
// Partial trailing windows are never recorded: only spans of exactly
// Window() cycles produce samples, so rates stay exact.
func (s *Sampler) Tick(cycle int64) bool {
	if s == nil || cycle < s.next {
		return false
	}
	s.closeWindow()
	return true
}

// closeWindow records one sample per series, then decimates if the
// bound is hit. The next-close cursor advances by the post-decimation
// window length, keeping closes aligned to window boundaries.
func (s *Sampler) closeWindow() {
	for _, t := range s.tracks {
		var v float64
		switch t.kind {
		case KindCounter:
			cur := t.last
			if t.counter != nil {
				cur = t.counter.v
			} else if t.cfn != nil {
				cur = t.cfn()
			}
			v = float64(cur - t.last)
			t.last = cur
		case KindGauge:
			if t.gfn != nil {
				v = t.gfn()
			}
		}
		t.vals = append(t.vals, v)
	}
	s.n++
	if s.n == s.maxW {
		s.decimate()
	}
	s.next += s.window
}

// decimate merges adjacent window pairs in place: counter deltas sum
// (the merged window saw both halves' events), gauges keep the later
// snapshot (the level at the merged window's close). The window length
// doubles, so all stored samples keep a uniform cadence.
func (s *Sampler) decimate() {
	half := s.n / 2
	for _, t := range s.tracks {
		for i := 0; i < half; i++ {
			if t.kind == KindCounter {
				t.vals[i] = t.vals[2*i] + t.vals[2*i+1]
			} else {
				t.vals[i] = t.vals[2*i+1]
			}
		}
		t.vals = t.vals[:half]
	}
	s.n = half
	s.window *= 2
	s.decims++
}

// Window returns the current per-sample window length in cycles
// (initial length × 2^decimations). Zero on a nil sampler.
func (s *Sampler) Window() int64 {
	if s == nil {
		return 0
	}
	return s.window
}

// Windows returns the number of closed windows currently stored.
func (s *Sampler) Windows() int {
	if s == nil {
		return 0
	}
	return s.n
}

// Decimations returns how many times the sampler has halved its
// resolution.
func (s *Sampler) Decimations() int {
	if s == nil {
		return 0
	}
	return s.decims
}

// Values returns the stored samples of the named series, or nil if the
// series (or the sampler) doesn't exist. The slice aliases internal
// storage and is invalidated by the next Tick that closes a window.
func (s *Sampler) Values(name string) []float64 {
	if s == nil {
		return nil
	}
	t, ok := s.byName[name]
	if !ok {
		return nil
	}
	return t.vals
}

// Series returns snapshots of every registered series in registration
// order (the Values slices alias internal storage). Nil on a nil
// sampler.
func (s *Sampler) Series() []Series {
	if s == nil {
		return nil
	}
	out := make([]Series, len(s.tracks))
	for i, t := range s.tracks {
		out[i] = Series{Name: t.name, Kind: t.kind, Window: s.window, Values: t.vals}
	}
	return out
}

// MSER computes the Marginal Standard Error Rule truncation point of
// the series x: the prefix length d* minimizing
//
//	z(d) = Σ_{i=d}^{n-1} (x_i − mean_{d..n-1})² / (n−d)²
//
// over d ∈ [0, n/2]. It returns d* and whether the minimum is interior
// (d* < n/2), the usual MSER acceptance rule: an interior minimum
// means the tail after d* behaves like a stationary sample, so the
// series has reached steady state and the first d* windows are
// initialization bias. Series shorter than 8 samples return (0,
// false). The scan is O(n) via suffix sums and allocation-free, so
// it can run at every window close for early-exit checks.
func MSER(x []float64) (cut int, converged bool) {
	n := len(x)
	if n < mserMinWindows {
		return 0, false
	}
	half := n / 2
	best, bestZ := half, math.Inf(1)
	var s1, s2 float64
	for i := n - 1; i >= 0; i-- {
		s1 += x[i]
		s2 += x[i] * x[i]
		if i <= half {
			cnt := float64(n - i)
			m := s1 / cnt
			z := (s2 - cnt*m*m) / (cnt * cnt)
			// <= prefers the smaller d on ties (longer steady
			// sample), e.g. a constant series truncates at 0.
			if z <= bestZ {
				bestZ, best = z, i
			}
		}
	}
	return best, best < half
}
