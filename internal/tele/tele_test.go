package tele

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// drive ticks the sampler through cycles [0, total).
func drive(s *Sampler, total int64) {
	for c := int64(0); c < total; c++ {
		s.Tick(c + 1)
	}
}

// TestCounterWindows: counter deltas land one per window, and the
// trailing partial window is dropped.
func TestCounterWindows(t *testing.T) {
	s := NewSampler(10, 64)
	c := s.Counter("events")
	for cyc := int64(0); cyc < 35; cyc++ {
		c.Inc() // one event per cycle
		if cyc%2 == 0 {
			c.Inc() // plus one every other cycle
		}
		s.Tick(cyc + 1)
	}
	// 35 cycles of 10-cycle windows: 3 full windows, 5 cycles dropped.
	if got := s.Windows(); got != 3 {
		t.Fatalf("Windows() = %d, want 3", got)
	}
	want := []float64{15, 15, 15} // 10 + 5 extra per window
	got := s.Values("events")
	if len(got) != len(want) {
		t.Fatalf("Values = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values = %v, want %v", got, want)
		}
	}
	if w := s.Window(); w != 10 {
		t.Fatalf("Window() = %d, want 10", w)
	}
}

// TestGaugeWindows: gauges snapshot the value at each window close.
func TestGaugeWindows(t *testing.T) {
	s := NewSampler(4, 64)
	var level float64
	s.GaugeFunc("depth", func() float64 { return level })
	for cyc := int64(0); cyc < 12; cyc++ {
		level = float64(cyc)
		s.Tick(cyc + 1)
	}
	// Closes at cycle counts 4, 8, 12 → levels 3, 7, 11.
	want := []float64{3, 7, 11}
	got := s.Values("depth")
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("gauge values = %v, want %v", got, want)
	}
}

// TestDecimation: hitting the sample bound halves the series (counters
// sum, gauges keep the later snapshot), doubles the window, and stays
// aligned, at any run length.
func TestDecimation(t *testing.T) {
	s := NewSampler(2, 8)
	c := s.Counter("n")
	var level float64
	s.GaugeFunc("g", func() float64 { return level })
	for cyc := int64(0); cyc < 64; cyc++ {
		c.Inc()
		level = float64(cyc + 1)
		s.Tick(cyc + 1)
	}
	// 64 cycles: 32 windows of 2 → decimated to 16 of 4 → 8 of 8 →
	// decimated to 4 of 16, then 4 more windows of 16... walk it:
	// bound 8, so decimations happen whenever stored count hits 8.
	if s.Window() != 16 {
		t.Fatalf("Window() = %d after 64 cycles (bound 8, base 2), want 16", s.Window())
	}
	if got := s.Windows(); got != 4 {
		t.Fatalf("Windows() = %d, want 4", got)
	}
	// Counter deltas must sum to the total count regardless of merging.
	var sum float64
	for _, v := range s.Values("n") {
		if v != 16 {
			t.Fatalf("counter samples = %v, want all 16", s.Values("n"))
		}
		sum += v
	}
	if sum != 64 {
		t.Fatalf("counter mass = %v, want 64 (conserved across decimation)", sum)
	}
	// Gauges keep the later snapshot: window i covers cycles
	// [16i,16(i+1)) and closes at level 16(i+1).
	g := s.Values("g")
	for i, v := range g {
		if v != float64(16*(i+1)) {
			t.Fatalf("gauge samples = %v, want close-of-window levels", g)
		}
	}
	// 32 windows of 2 collapse through three generations: bound 8 is
	// hit at cycles 16, 32, and 64.
	if s.Decimations() != 3 {
		t.Fatalf("Decimations() = %d, want 3", s.Decimations())
	}
}

// TestDecimationEquivalence: a coarse sampler and a decimated fine
// sampler agree on counter tracks once their windows match.
func TestDecimationEquivalence(t *testing.T) {
	fine := NewSampler(4, 8)
	coarse := NewSampler(32, 64)
	cf, cc := fine.Counter("n"), coarse.Counter("n")
	for cyc := int64(0); cyc < 160; cyc++ {
		if cyc%3 == 0 {
			cf.Inc()
			cc.Inc()
		}
		fine.Tick(cyc + 1)
		coarse.Tick(cyc + 1)
	}
	if fine.Window() != coarse.Window() {
		t.Fatalf("windows diverged: fine %d, coarse %d", fine.Window(), coarse.Window())
	}
	fv, cv := fine.Values("n"), coarse.Values("n")
	if len(fv) != len(cv) {
		t.Fatalf("lengths diverged: %v vs %v", fv, cv)
	}
	for i := range fv {
		if fv[i] != cv[i] {
			t.Fatalf("decimated fine %v != native coarse %v", fv, cv)
		}
	}
}

// TestNilSafety: every method on nil samplers and nil counters is a
// safe no-op, and a nil counter handle comes back from a nil sampler.
func TestNilSafety(t *testing.T) {
	var s *Sampler
	c := s.Counter("x")
	if c != nil {
		t.Fatal("nil sampler returned a live counter")
	}
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	s.CounterFunc("y", func() int64 { return 1 })
	s.GaugeFunc("z", func() float64 { return 1 })
	if s.Tick(1000) {
		t.Fatal("nil sampler closed a window")
	}
	if s.Window() != 0 || s.Windows() != 0 || s.Decimations() != 0 {
		t.Fatal("nil sampler reports nonzero state")
	}
	if s.Values("x") != nil || s.Series() != nil {
		t.Fatal("nil sampler returned data")
	}
}

// TestDisabledPathAllocs: the per-cycle cost of disabled telemetry —
// a nil-counter Inc and a nil-sampler Tick — is 0 allocs/op.
func TestDisabledPathAllocs(t *testing.T) {
	var s *Sampler
	c := s.Counter("x")
	allocs := testing.AllocsPerRun(1000, func() {
		for i := int64(0); i < 100; i++ {
			c.Inc()
			s.Tick(i)
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry path allocates %.1f/op, want 0", allocs)
	}
}

// TestEnabledSteadyStateAllocs: once a sampler's series storage is at
// capacity-steady-state, ticking and closing windows stays
// allocation-free (append reuses capacity, decimation is in place).
func TestEnabledSteadyStateAllocs(t *testing.T) {
	s := NewSampler(4, 16)
	c := s.Counter("n")
	s.GaugeFunc("g", func() float64 { return 1 })
	drive(s, 4*64) // well past the first decimations
	var cyc int64 = 4 * 64
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			c.Inc()
			cyc++
			s.Tick(cyc)
		}
	})
	if allocs != 0 {
		t.Fatalf("enabled steady-state path allocates %.1f/op, want 0", allocs)
	}
}

// TestCounterFunc: callback-backed counters sample deltas like handle
// counters.
func TestCounterFunc(t *testing.T) {
	s := NewSampler(5, 8)
	var total int64
	s.CounterFunc("jobs", func() int64 { return total })
	for cyc := int64(0); cyc < 20; cyc++ {
		total += 2
		s.Tick(cyc + 1)
	}
	for _, v := range s.Values("jobs") {
		if v != 10 {
			t.Fatalf("CounterFunc deltas = %v, want all 10", s.Values("jobs"))
		}
	}
}

// TestDuplicateRegistration: re-requesting a counter by name returns
// the same handle; cross-kind reuse panics.
func TestDuplicateRegistration(t *testing.T) {
	s := NewSampler(4, 8)
	a, b := s.Counter("n"), s.Counter("n")
	if a != b {
		t.Fatal("same-name Counter returned different handles")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge over a counter did not panic")
		}
	}()
	s.GaugeFunc("n", func() float64 { return 0 })
}

// TestMSERConstantSeries: a stationary series converges with cut 0.
func TestMSERConstantSeries(t *testing.T) {
	x := make([]float64, 32)
	for i := range x {
		x[i] = 7
	}
	cut, ok := MSER(x)
	if !ok || cut != 0 {
		t.Fatalf("MSER(constant) = (%d, %v), want (0, true)", cut, ok)
	}
}

// TestMSERRampThenSteady: the cut lands at (or just past) the end of
// the initialization ramp.
func TestMSERRampThenSteady(t *testing.T) {
	x := make([]float64, 64)
	for i := range x {
		if i < 10 {
			x[i] = float64(i) // warmup ramp 0..9
		} else {
			x[i] = 10 + 0.1*math.Sin(float64(i)) // small stationary wiggle
		}
	}
	cut, ok := MSER(x)
	if !ok {
		t.Fatalf("MSER(ramp+steady) did not converge")
	}
	if cut < 8 || cut > 12 {
		t.Fatalf("MSER cut = %d, want near ramp end 10", cut)
	}
}

// TestMSERTrendNotConverged: a linear drift never settles — its z(d)
// decreases all the way to the d = n/2 boundary, which the acceptance
// rule rejects.
func TestMSERTrendNotConverged(t *testing.T) {
	x := make([]float64, 64)
	for i := range x {
		x[i] = 3 * float64(i)
	}
	if _, ok := MSER(x); ok {
		t.Fatal("MSER(linear trend) reported converged")
	}
}

// TestMSERShortSeries: fewer than 8 samples is never a verdict.
func TestMSERShortSeries(t *testing.T) {
	if _, ok := MSER([]float64{1, 1, 1, 1, 1, 1, 1}); ok {
		t.Fatal("MSER on 7 samples reported converged")
	}
	if cut, ok := MSER(nil); cut != 0 || ok {
		t.Fatal("MSER(nil) not (0, false)")
	}
}

// TestMSERAllocs: the detector is allocation-free so it can run at
// every window close under -converge-stop.
func TestMSERAllocs(t *testing.T) {
	x := make([]float64, 512)
	for i := range x {
		x[i] = float64(i % 7)
	}
	if allocs := testing.AllocsPerRun(100, func() { MSER(x) }); allocs != 0 {
		t.Fatalf("MSER allocates %.1f/op, want 0", allocs)
	}
}

// TestWriteNDJSONAndValidate: writer output round-trips through the
// validator with the right sample count, and is deterministic.
func TestWriteNDJSONAndValidate(t *testing.T) {
	mk := func() *Sampler {
		s := NewSampler(8, 16)
		c := s.Counter("flits")
		s.GaugeFunc("queue", func() float64 { return 3.5 })
		for cyc := int64(0); cyc < 40; cyc++ {
			c.Inc()
			s.Tick(cyc + 1)
		}
		return s
	}
	var a, b bytes.Buffer
	if err := WriteNDJSON(&a, []*Sampler{mk(), nil, mk()}); err != nil {
		t.Fatal(err)
	}
	if err := WriteNDJSON(&b, []*Sampler{mk(), nil, mk()}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteNDJSON is not deterministic")
	}
	n, err := ValidateNDJSON(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatalf("ValidateNDJSON: %v\n%s", err, a.String())
	}
	// 2 live runs × 2 series × 5 windows.
	if n != 20 {
		t.Fatalf("ValidateNDJSON samples = %d, want 20", n)
	}
	// Nil runs keep their index: the second live sampler is run 2.
	if !strings.Contains(a.String(), `"run":2`) {
		t.Fatalf("nil run did not preserve indices:\n%s", a.String())
	}
}

// TestWriteNDJSONNonFinite: NaN gauge snapshots serialize as null and
// still validate.
func TestWriteNDJSONNonFinite(t *testing.T) {
	s := NewSampler(4, 8)
	s.GaugeFunc("bad", func() float64 { return math.NaN() })
	drive(s, 8)
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, []*Sampler{s}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "null") {
		t.Fatalf("NaN did not serialize as null: %s", buf.String())
	}
	if _, err := ValidateNDJSON(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ValidateNDJSON rejected nulls: %v", err)
	}
}

// TestValidateNDJSONRejects: malformed streams are caught.
func TestValidateNDJSONRejects(t *testing.T) {
	cases := map[string]string{
		"empty stream":    "",
		"not json":        "nope\n",
		"missing run":     `{"series":"x","kind":"counter","window":4,"samples":0,"values":[]}` + "\n",
		"bad kind":        `{"run":0,"series":"x","kind":"meter","window":4,"samples":0,"values":[]}` + "\n",
		"zero window":     `{"run":0,"series":"x","kind":"gauge","window":0,"samples":0,"values":[]}` + "\n",
		"count mismatch":  `{"run":0,"series":"x","kind":"gauge","window":4,"samples":3,"values":[1]}` + "\n",
		"empty series":    `{"run":0,"series":"","kind":"gauge","window":4,"samples":0,"values":[]}` + "\n",
		"unknown field":   `{"run":0,"series":"x","kind":"gauge","window":4,"samples":0,"values":[],"extra":1}` + "\n",
		"duplicate track": strings.Repeat(`{"run":0,"series":"x","kind":"gauge","window":4,"samples":0,"values":[]}`+"\n", 2),
	}
	for name, in := range cases {
		if _, err := ValidateNDJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validator accepted %q", name, in)
		}
	}
}
