// Package topo defines the structural configuration of the switches under
// study: radix, layer count, layer-to-layer channel multiplicity, channel
// allocation policy, and the port/layer/channel index arithmetic shared by
// the switch models, the simulator, and the physical cost model.
//
// Conventions (matching the paper's Fig. 2/3): global input and output
// ports are numbered 0..Radix-1; layer l (0-based) owns ports
// [l*Radix/Layers, (l+1)*Radix/Layers). Layer-to-layer channels (L2LCs)
// are dedicated per ordered (source layer, destination layer) pair, with
// Channels of them per pair.
package topo

import "fmt"

// Grant records one connection formed by an arbitration cycle: global
// input In was granted global output Out. All switch models return Grants
// so the simulator can drive them interchangeably.
type Grant struct {
	In  int
	Out int
}

// AllocPolicy selects how a layer's inputs are assigned to the L2LCs
// toward a destination layer when Channels > 1 (paper §III-A).
type AllocPolicy int

const (
	// InputBinned gives each input a fixed, interleaved channel assignment.
	InputBinned AllocPolicy = iota
	// OutputBinned assigns the channel from the destination output index.
	OutputBinned
	// PriorityBased lets every input contend for every channel, with the
	// channels filled in priority order (higher delay in hardware).
	PriorityBased
)

// String returns the policy name used in reports.
func (p AllocPolicy) String() string {
	switch p {
	case InputBinned:
		return "input-binned"
	case OutputBinned:
		return "output-binned"
	case PriorityBased:
		return "priority"
	default:
		return fmt.Sprintf("AllocPolicy(%d)", int(p))
	}
}

// Scheme selects the arbitration scheme of a switch (paper §III-B).
type Scheme int

const (
	// LRG is flat least-recently-granted arbitration; the only scheme for
	// the 2D and folded switches, where a single arbiter sees all inputs.
	LRG Scheme = iota
	// L2LLRG is the baseline hierarchical scheme: independent LRG at the
	// local switch and at the inter-layer sub-blocks.
	L2LLRG
	// WLRG freezes inter-layer LRG priorities in proportion to the number
	// of requestors behind each channel. Fair but hardware-infeasible.
	WLRG
	// CLRG is the paper's contribution: class counters per primary input
	// at the inter-layer sub-block, LRG tie-breaking within a class.
	CLRG
	// ISLIP1 is a single-iteration iSLIP *analog* for the related-work
	// comparison (paper §VII): round-robin pointers at both stages of the
	// Hi-Rise structure, with the first stage's pointer advancing only on
	// a final-stage grant. The paper observes it "is similar to the
	// baseline L-2-L LRG and does not solve the fairness issues". It is
	// NOT the true iSLIP algorithm — it runs on Hi-Rise's hierarchical
	// single-request-per-input view, not on virtual output queues; the
	// real accept-gated, multi-iteration iSLIP is the ISLIP scheme below.
	ISLIP1
	// ISLIP is canonical multi-iteration iSLIP (internal/sched) on the
	// flat VOQ crossbar mode (sim.RunVOQ). VOQ-only: it has no Hi-Rise
	// hierarchical implementation and core.New rejects it.
	ISLIP
	// Wavefront is the rotating-priority wavefront allocator on the VOQ
	// crossbar mode. VOQ-only.
	Wavefront
	// MWM is the exact maximum-weight-matching reference scheduler
	// (queue-length weights, O(n³) Hungarian) on the VOQ crossbar mode.
	// VOQ-only, and far too slow for hardware — it is the oracle and
	// upper bound of the sched-shootout campaign.
	MWM
)

// VOQ reports whether the scheme is an input-queued crossbar scheduler
// for the VOQ switch mode (sim.RunVOQ + internal/sched) rather than a
// Hi-Rise/Swizzle-Switch arbitration scheme. VOQ schemes are rejected
// by Validate, and thus by core.New.
func (s Scheme) VOQ() bool {
	switch s {
	case ISLIP, Wavefront, MWM:
		return true
	}
	return false
}

// String returns the scheme name used in reports.
func (s Scheme) String() string {
	switch s {
	case LRG:
		return "LRG"
	case L2LLRG:
		return "L-2-L LRG"
	case WLRG:
		return "WLRG"
	case CLRG:
		return "CLRG"
	case ISLIP1:
		return "iSLIP-1"
	case ISLIP:
		return "iSLIP"
	case Wavefront:
		return "wavefront"
	case MWM:
		return "MWM"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Config describes a Hi-Rise switch instance. The 2D and folded baselines
// use only Radix (and, for folded, Layers).
type Config struct {
	Radix    int         // total inputs = total outputs (N)
	Layers   int         // stacked silicon layers (L); 1 means flat 2D
	Channels int         // L2LC multiplicity between each layer pair (c)
	Alloc    AllocPolicy // channel allocation policy
	Scheme   Scheme      // arbitration scheme
	Classes  int         // CLRG class count (paper uses 3)
}

// Default64 returns the paper's headline configuration: 64-radix, 4-layer,
// 4-channel, input-binned, CLRG with 3 classes.
func Default64() Config {
	return Config{Radix: 64, Layers: 4, Channels: 4, Alloc: InputBinned, Scheme: CLRG, Classes: 3}
}

// Validate reports whether the configuration is structurally sound for
// cycle-accurate simulation (the physical model tolerates more).
func (c Config) Validate() error {
	switch {
	case c.Radix <= 0:
		return fmt.Errorf("topo: radix %d must be positive", c.Radix)
	case c.Layers <= 0:
		return fmt.Errorf("topo: layers %d must be positive", c.Layers)
	case c.Radix%c.Layers != 0:
		return fmt.Errorf("topo: radix %d not divisible by layers %d", c.Radix, c.Layers)
	case c.Layers > 1 && c.Channels <= 0:
		return fmt.Errorf("topo: channels %d must be positive", c.Channels)
	case c.Scheme.VOQ():
		return fmt.Errorf("topo: scheme %v is a VOQ crossbar scheduler (sim.RunVOQ), not a hierarchical switch scheme", c.Scheme)
	case c.Scheme == CLRG && c.Classes < 2:
		return fmt.Errorf("topo: CLRG needs at least 2 classes, have %d", c.Classes)
	case c.Alloc == InputBinned && c.Layers > 1 && c.PortsPerLayer()%c.Channels != 0:
		return fmt.Errorf("topo: ports per layer %d not divisible by channels %d for input binning",
			c.PortsPerLayer(), c.Channels)
	}
	return nil
}

// PortsPerLayer returns N/L.
func (c Config) PortsPerLayer() int { return c.Radix / c.Layers }

// LayerOf returns the layer owning global port p (inputs and outputs use
// the same partitioning).
func (c Config) LayerOf(p int) int { return p / c.PortsPerLayer() }

// LocalIndex returns port p's index within its layer.
func (c Config) LocalIndex(p int) int { return p % c.PortsPerLayer() }

// Port returns the global port for (layer, localIndex).
func (c Config) Port(layer, local int) int { return layer*c.PortsPerLayer() + local }

// NumL2LC returns the total number of layer-to-layer channels in the
// switch: one group of Channels per ordered layer pair.
func (c Config) NumL2LC() int { return c.Layers * (c.Layers - 1) * c.Channels }

// L2LCID identifies one channel from layer src to layer dst. Channels are
// numbered densely: for each source layer, the L-1 destinations in
// ascending layer order (skipping src), Channels each.
func (c Config) L2LCID(src, dst, ch int) int {
	if src == dst {
		panic("topo: no L2LC within a layer")
	}
	d := dst
	if dst > src {
		d--
	}
	return (src*(c.Layers-1)+d)*c.Channels + ch
}

// L2LCSrcDst inverts L2LCID, returning source layer, destination layer,
// and channel index within the pair.
func (c Config) L2LCSrcDst(id int) (src, dst, ch int) {
	ch = id % c.Channels
	pair := id / c.Channels
	src = pair / (c.Layers - 1)
	d := pair % (c.Layers - 1)
	dst = d
	if dst >= src {
		dst++
	}
	return
}

// ChannelFor returns the channel index (0..Channels-1) that the given
// global input uses to reach the given global output's layer, under the
// configured allocation policy. For PriorityBased the caller arbitrates
// across all channels, so ChannelFor returns -1.
func (c Config) ChannelFor(input, output int) int {
	switch c.Alloc {
	case InputBinned:
		return c.LocalIndex(input) % c.Channels
	case OutputBinned:
		return c.LocalIndex(output) % c.Channels
	default:
		return -1
	}
}

// InputsPerChannel returns how many of a layer's inputs share one L2LC
// under input binning: N/(L*c) (paper §III-A).
func (c Config) InputsPerChannel() int { return c.PortsPerLayer() / c.Channels }

// LocalSwitchShape returns the (inputs, outputs) dimensions of the local
// switch on one layer: N/L inputs; N/L intermediate outputs plus
// c*(L-1) L2LC outputs (paper Fig. 3).
func (c Config) LocalSwitchShape() (in, out int) {
	return c.PortsPerLayer(), c.PortsPerLayer() + c.Channels*(c.Layers-1)
}

// SubBlockInputs returns the number of contenders at one inter-layer
// sub-block: c*(L-1) incoming L2LCs plus the local intermediate output.
func (c Config) SubBlockInputs() int { return c.Channels*(c.Layers-1) + 1 }

// String renders the configuration in the paper's style, e.g.
// "[(16x28), 16.(13x1)]x4".
func (c Config) String() string {
	if c.Layers <= 1 {
		return fmt.Sprintf("%dx%d", c.Radix, c.Radix)
	}
	in, out := c.LocalSwitchShape()
	return fmt.Sprintf("[(%dx%d), %d.(%dx1)]x%d %s/%s",
		in, out, c.PortsPerLayer(), c.SubBlockInputs(), c.Layers, c.Scheme, c.Alloc)
}
