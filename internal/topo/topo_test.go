package topo

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDefault64Valid(t *testing.T) {
	c := Default64()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Radix != 64 || c.Layers != 4 || c.Channels != 4 {
		t.Fatalf("unexpected default %+v", c)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []Config{
		{Radix: 0, Layers: 1},
		{Radix: -4, Layers: 1},
		{Radix: 64, Layers: 0},
		{Radix: 63, Layers: 4, Channels: 1},
		{Radix: 64, Layers: 4, Channels: 0},
		{Radix: 64, Layers: 4, Channels: 1, Scheme: CLRG, Classes: 1},
		{Radix: 64, Layers: 4, Channels: 3, Alloc: InputBinned}, // 16 % 3 != 0
		{Radix: 64, Layers: 4, Channels: 4, Scheme: ISLIP},      // VOQ-only scheme
		{Radix: 64, Layers: 4, Channels: 4, Scheme: Wavefront},
		{Radix: 64, Layers: 1, Scheme: MWM},
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid config", c)
		}
	}
}

// TestSchemeNamesAndVOQ pins the report names of every scheme and the
// VOQ-only partition: the hierarchical schemes must not be flagged, the
// scheduler-zoo schemes must.
func TestSchemeNamesAndVOQ(t *testing.T) {
	names := map[Scheme]string{
		LRG: "LRG", L2LLRG: "L-2-L LRG", WLRG: "WLRG", CLRG: "CLRG",
		ISLIP1: "iSLIP-1", ISLIP: "iSLIP", Wavefront: "wavefront", MWM: "MWM",
	}
	for s, want := range names {
		if got := s.String(); got != want {
			t.Errorf("Scheme(%d).String() = %q, want %q", int(s), got, want)
		}
		voq := s == ISLIP || s == Wavefront || s == MWM
		if s.VOQ() != voq {
			t.Errorf("%v.VOQ() = %v, want %v", s, s.VOQ(), voq)
		}
	}
}

func TestLayerPortMath(t *testing.T) {
	c := Config{Radix: 64, Layers: 4, Channels: 1}
	if got := c.PortsPerLayer(); got != 16 {
		t.Fatalf("ports/layer = %d", got)
	}
	if l := c.LayerOf(0); l != 0 {
		t.Errorf("LayerOf(0) = %d", l)
	}
	if l := c.LayerOf(63); l != 3 {
		t.Errorf("LayerOf(63) = %d", l)
	}
	if l := c.LayerOf(16); l != 1 {
		t.Errorf("LayerOf(16) = %d", l)
	}
	if i := c.LocalIndex(20); i != 4 {
		t.Errorf("LocalIndex(20) = %d", i)
	}
	if p := c.Port(3, 15); p != 63 {
		t.Errorf("Port(3,15) = %d", p)
	}
}

func TestPortRoundTrip(t *testing.T) {
	if err := quick.Check(func(pRaw uint16) bool {
		c := Config{Radix: 96, Layers: 4, Channels: 2}
		p := int(pRaw) % c.Radix
		return c.Port(c.LayerOf(p), c.LocalIndex(p)) == p
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestL2LCCountMatchesPaperTableIV(t *testing.T) {
	// Table IV: #TSVs = NumL2LC * 128 bits -> 1536, 3072, 6144 for c=1,2,4.
	for _, tc := range []struct{ c, want int }{{1, 12}, {2, 24}, {4, 48}} {
		cfg := Config{Radix: 64, Layers: 4, Channels: tc.c}
		if got := cfg.NumL2LC(); got != tc.want {
			t.Errorf("c=%d: NumL2LC = %d, want %d", tc.c, got, tc.want)
		}
	}
}

func TestL2LCIDDenseAndInvertible(t *testing.T) {
	cfg := Config{Radix: 64, Layers: 4, Channels: 4}
	seen := make(map[int]bool)
	for src := 0; src < cfg.Layers; src++ {
		for dst := 0; dst < cfg.Layers; dst++ {
			if src == dst {
				continue
			}
			for ch := 0; ch < cfg.Channels; ch++ {
				id := cfg.L2LCID(src, dst, ch)
				if id < 0 || id >= cfg.NumL2LC() {
					t.Fatalf("id %d out of range", id)
				}
				if seen[id] {
					t.Fatalf("duplicate id %d", id)
				}
				seen[id] = true
				s, d, c2 := cfg.L2LCSrcDst(id)
				if s != src || d != dst || c2 != ch {
					t.Fatalf("round trip (%d,%d,%d) -> %d -> (%d,%d,%d)",
						src, dst, ch, id, s, d, c2)
				}
			}
		}
	}
	if len(seen) != cfg.NumL2LC() {
		t.Fatalf("covered %d ids, want %d", len(seen), cfg.NumL2LC())
	}
}

// TestL2LCIDRoundTripRandomConfigs extends the dense-cover test to
// random layer/channel geometries.
func TestL2LCIDRoundTripRandomConfigs(t *testing.T) {
	if err := quick.Check(func(lRaw, cRaw, srcRaw, dstRaw, chRaw uint8) bool {
		layers := 2 + int(lRaw%6)
		channels := 1 + int(cRaw%4)
		cfg := Config{Radix: layers * 8, Layers: layers, Channels: channels}
		src := int(srcRaw) % layers
		dst := int(dstRaw) % layers
		if dst == src {
			dst = (dst + 1) % layers
		}
		ch := int(chRaw) % channels
		id := cfg.L2LCID(src, dst, ch)
		if id < 0 || id >= cfg.NumL2LC() {
			return false
		}
		s, d, c := cfg.L2LCSrcDst(id)
		return s == src && d == dst && c == ch
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestL2LCIDPanicsOnSameLayer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Config{Radix: 64, Layers: 4, Channels: 1}.L2LCID(2, 2, 0)
}

func TestChannelForPolicies(t *testing.T) {
	base := Config{Radix: 64, Layers: 4, Channels: 4}

	in := base
	in.Alloc = InputBinned
	// Input 5 on layer 0 -> local index 5 -> channel 1, regardless of output.
	if ch := in.ChannelFor(5, 63); ch != 1 {
		t.Errorf("input-binned channel = %d", ch)
	}
	if ch := in.ChannelFor(5, 32); ch != 1 {
		t.Errorf("input-binned channel should not depend on output, got %d", ch)
	}

	out := base
	out.Alloc = OutputBinned
	// Output 63 -> local index 15 -> channel 3, regardless of input.
	if ch := out.ChannelFor(5, 63); ch != 3 {
		t.Errorf("output-binned channel = %d", ch)
	}
	if ch := out.ChannelFor(9, 63); ch != 3 {
		t.Errorf("output-binned channel should not depend on input, got %d", ch)
	}

	pri := base
	pri.Alloc = PriorityBased
	if ch := pri.ChannelFor(5, 63); ch != -1 {
		t.Errorf("priority-based should return -1, got %d", ch)
	}
}

func TestInputBinnedInterleavingSpreadsNeighbours(t *testing.T) {
	// Adjacent inputs on a layer must land on different channels
	// ("selected in an interleaved fashion", paper §III-A).
	c := Config{Radix: 64, Layers: 4, Channels: 4, Alloc: InputBinned}
	for local := 0; local < c.PortsPerLayer()-1; local++ {
		a := c.ChannelFor(c.Port(1, local), 63)
		b := c.ChannelFor(c.Port(1, local+1), 63)
		if a == b {
			t.Fatalf("inputs %d and %d share channel %d", local, local+1, a)
		}
	}
}

func TestShapesMatchPaperExamples(t *testing.T) {
	// Paper §III-A: 64-radix, 4 layers, c=1 -> local 16x19, sub-blocks 4x1.
	c1 := Config{Radix: 64, Layers: 4, Channels: 1}
	if in, out := c1.LocalSwitchShape(); in != 16 || out != 19 {
		t.Errorf("c=1 local switch %dx%d, want 16x19", in, out)
	}
	if n := c1.SubBlockInputs(); n != 4 {
		t.Errorf("c=1 sub-block inputs %d, want 4", n)
	}
	// c=4 -> local 16x28, sub-blocks 13x1.
	c4 := Config{Radix: 64, Layers: 4, Channels: 4}
	if in, out := c4.LocalSwitchShape(); in != 16 || out != 28 {
		t.Errorf("c=4 local switch %dx%d, want 16x28", in, out)
	}
	if n := c4.SubBlockInputs(); n != 13 {
		t.Errorf("c=4 sub-block inputs %d, want 13", n)
	}
	// Input binning with c=4: each L2LC serves 4 pre-assigned inputs.
	if n := c4.InputsPerChannel(); n != 4 {
		t.Errorf("inputs/channel %d, want 4", n)
	}
}

func TestStringForms(t *testing.T) {
	flat := Config{Radix: 64, Layers: 1}
	if s := flat.String(); s != "64x64" {
		t.Errorf("flat string %q", s)
	}
	hr := Default64()
	s := hr.String()
	for _, want := range []string{"16x28", "13x1", "x4", "CLRG"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestSchemeAndPolicyStrings(t *testing.T) {
	if LRG.String() != "LRG" || CLRG.String() != "CLRG" || WLRG.String() != "WLRG" || L2LLRG.String() != "L-2-L LRG" {
		t.Error("scheme names wrong")
	}
	if InputBinned.String() != "input-binned" || OutputBinned.String() != "output-binned" || PriorityBased.String() != "priority" {
		t.Error("policy names wrong")
	}
	if Scheme(99).String() == "" || AllocPolicy(99).String() == "" {
		t.Error("unknown values should still render")
	}
}
