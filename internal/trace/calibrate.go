package trace

// This file solves the catalog's per-benchmark MPKI values from paper
// Table VI. The paper prints only per-mix *average* MPKIs; per-benchmark
// values must be reconstructed. The solver starts from publicly known
// SPEC2006 miss-rate folklore (the priors) and finds the minimum
// relative adjustment that makes every mix average exact — a
// generalized least-norm problem solved with Lagrange multipliers:
// minimize Σ((x_j - p_j)/p_j)² subject to A·x = targets, where
// A[m][j] is benchmark j's instance share of mix m.
//
// The catalog in trace.go pins the solution; TestCalibrationMatchesCatalog
// fails if solver and catalog ever drift apart.

// Calibration is the solved Table VI MPKI reconstruction.
type Calibration struct {
	// Names lists the benchmarks in first-appearance order over the
	// mixes (the order cmd/probe prints).
	Names []string
	// Priors and Solved map benchmark name to its folklore prior and
	// its solved MPKI.
	Priors, Solved map[string]float64
	// Targets and MixAvg are the paper's per-mix average MPKIs and the
	// averages the solution actually achieves (equal up to float error).
	Targets, MixAvg []float64
}

// calPart is one benchmark's instance count within a mix, as printed in
// Table VI.
type calPart struct {
	bench string
	count int
}

// calibrationPriors returns the SPEC2006 miss-rate folklore the solver
// adjusts. Values are approximate L1+L2 MPKIs from public
// characterization studies.
func calibrationPriors() map[string]float64 {
	return map[string]float64{
		"milc": 45, "applu": 20, "astar": 15, "sjeng": 1.5, "tonto": 3, "hmmer": 3,
		"sjas": 40, "gcc": 9, "sjbb": 45, "gromacs": 5, "xalan": 30,
		"libquantum": 60, "barnes": 10, "tpcw": 55, "povray": 2,
		"swim": 55, "leslie": 35, "omnet": 40, "art": 50,
		"mcf": 110, "ocean": 40, "lbm": 60, "deal": 12, "sap": 45,
		"namd": 3, "Gems": 75, "soplex": 50,
	}
}

// calibrationMixes returns Table VI's instance counts exactly as
// printed. Note Mix7: the printed counts sum to 63 (sap appears 10
// times), and the calibration divides by 64 cores regardless, matching
// how the paper's averages were evidently computed. This deliberately
// differs from TableVIMixes, which gives sap an 11th instance so the
// simulated system fills all 64 cores — using the runnable mixes here
// would shift the solution away from the pinned catalog.
func calibrationMixes() [][]calPart {
	return [][]calPart{
		{{"milc", 11}, {"applu", 11}, {"astar", 10}, {"sjeng", 11}, {"tonto", 11}, {"hmmer", 10}},
		{{"sjas", 11}, {"gcc", 11}, {"sjbb", 11}, {"gromacs", 11}, {"sjeng", 10}, {"xalan", 10}},
		{{"milc", 11}, {"libquantum", 10}, {"astar", 11}, {"barnes", 11}, {"tpcw", 11}, {"povray", 10}},
		{{"astar", 11}, {"swim", 11}, {"leslie", 10}, {"omnet", 10}, {"sjas", 11}, {"art", 11}},
		{{"mcf", 11}, {"ocean", 10}, {"gromacs", 10}, {"lbm", 11}, {"deal", 11}, {"sap", 11}},
		{{"mcf", 10}, {"namd", 11}, {"hmmer", 11}, {"tpcw", 11}, {"omnet", 10}, {"swim", 11}},
		{{"Gems", 10}, {"sjbb", 11}, {"sjas", 11}, {"mcf", 10}, {"xalan", 11}, {"sap", 10}},
		{{"milc", 11}, {"tpcw", 10}, {"Gems", 11}, {"mcf", 11}, {"sjas", 11}, {"soplex", 10}},
	}
}

// calibrationTargets returns Table VI's per-mix average MPKIs.
func calibrationTargets() []float64 {
	return []float64{15.0, 21.3, 33.3, 38.4, 52.2, 58.4, 66.9, 76.0}
}

// CalibrateTableVI reconstructs the per-benchmark MPKIs behind Table
// VI's mix averages. The computation is pure and deterministic; the
// catalog records its output.
func CalibrateTableVI() Calibration {
	prior := calibrationPriors()
	mixes := calibrationMixes()
	targets := calibrationTargets()

	var names []string
	idx := map[string]int{}
	for _, m := range mixes {
		for _, p := range m {
			if _, seen := idx[p.bench]; !seen {
				idx[p.bench] = len(names)
				names = append(names, p.bench)
			}
		}
	}
	nb, nm := len(names), len(mixes)

	// A x = targets with A[m][j] = count/64.
	A := make([][]float64, nm)
	for m := range A {
		A[m] = make([]float64, nb)
		for _, p := range mixes[m] {
			A[m][idx[p.bench]] = float64(p.count) / 64
		}
	}
	p := make([]float64, nb)
	for j, n := range names {
		p[j] = prior[n]
	}
	// Residual r = targets - A·p.
	r := make([]float64, nm)
	for m := range r {
		r[m] = targets[m]
		for j := range p {
			r[m] -= A[m][j] * p[j]
		}
	}
	// The stationarity condition gives x = p + W⁻¹AᵀΛ with
	// W⁻¹ = diag(p_j²); Λ solves (A W⁻¹ Aᵀ) Λ = r.
	M := make([][]float64, nm)
	for i := range M {
		M[i] = make([]float64, nm)
		for j := range M[i] {
			for k := 0; k < nb; k++ {
				M[i][j] += A[i][k] * p[k] * p[k] * A[j][k]
			}
		}
	}
	lam := solveLinear(M, r)
	x := make([]float64, nb)
	for j := range x {
		x[j] = p[j]
		for m := 0; m < nm; m++ {
			x[j] += p[j] * p[j] * A[m][j] * lam[m]
		}
	}

	cal := Calibration{
		Names:   names,
		Priors:  map[string]float64{},
		Solved:  map[string]float64{},
		Targets: targets,
		MixAvg:  make([]float64, nm),
	}
	for j, n := range names {
		cal.Priors[n] = p[j]
		cal.Solved[n] = x[j]
	}
	for m := range mixes {
		for j := range x {
			cal.MixAvg[m] += A[m][j] * x[j]
		}
	}
	return cal
}

// solveLinear performs Gaussian elimination with partial pivoting on
// M y = r, returning y. M and r are not modified.
func solveLinear(M [][]float64, r []float64) []float64 {
	n := len(M)
	a := make([][]float64, n)
	for i := range a {
		a[i] = append(append([]float64{}, M[i]...), r[i])
	}
	abs := func(v float64) float64 {
		if v < 0 {
			return -v
		}
		return v
	}
	for c := 0; c < n; c++ {
		piv := c
		for i := c + 1; i < n; i++ {
			if abs(a[i][c]) > abs(a[piv][c]) {
				piv = i
			}
		}
		a[c], a[piv] = a[piv], a[c]
		for i := c + 1; i < n; i++ {
			f := a[i][c] / a[c][c]
			for j := c; j <= n; j++ {
				a[i][j] -= f * a[c][j]
			}
		}
	}
	y := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		y[i] = a[i][n]
		for j := i + 1; j < n; j++ {
			y[i] -= a[i][j] * y[j]
		}
		y[i] /= a[i][i]
	}
	return y
}
