package trace

import (
	"math"
	"testing"
)

// TestCalibrationMatchesCatalog pins the solver to the catalog: the
// catalog's NetMPKI values are the (rounded) solver output, so any
// change to the priors, the mix table, or the algebra shows up here.
func TestCalibrationMatchesCatalog(t *testing.T) {
	cal := CalibrateTableVI()
	if len(cal.Names) != len(catalog) {
		t.Fatalf("solver covers %d benchmarks, catalog has %d", len(cal.Names), len(catalog))
	}
	for _, b := range catalog {
		solved, ok := cal.Solved[b.Name]
		if !ok {
			t.Errorf("catalog benchmark %q missing from solution", b.Name)
			continue
		}
		// Catalog values are the solution rounded to 2 decimals.
		if math.Abs(solved-b.NetMPKI) > 0.005 {
			t.Errorf("%s: solved %.4f, catalog pins %.2f", b.Name, solved, b.NetMPKI)
		}
	}
}

// TestCalibrationHitsTargets verifies the constraint actually holds:
// each printed-count mix average equals the paper's Table VI value.
func TestCalibrationHitsTargets(t *testing.T) {
	cal := CalibrateTableVI()
	if len(cal.MixAvg) != len(cal.Targets) {
		t.Fatalf("%d mix averages vs %d targets", len(cal.MixAvg), len(cal.Targets))
	}
	for m := range cal.Targets {
		if math.Abs(cal.MixAvg[m]-cal.Targets[m]) > 1e-9 {
			t.Errorf("mix%d: average %.6f, target %.1f", m+1, cal.MixAvg[m], cal.Targets[m])
		}
	}
}

// TestCalibrationStaysNearPriors guards the "minimum relative
// adjustment" property: no benchmark moves by more than 60% of its
// prior (the largest real adjustment is mcf at ~55%).
func TestCalibrationStaysNearPriors(t *testing.T) {
	cal := CalibrateTableVI()
	for _, n := range cal.Names {
		rel := math.Abs(cal.Solved[n]-cal.Priors[n]) / cal.Priors[n]
		if rel > 0.60 {
			t.Errorf("%s: moved %.0f%% from prior %.1f to %.2f", n, rel*100, cal.Priors[n], cal.Solved[n])
		}
		if cal.Solved[n] <= 0 {
			t.Errorf("%s: non-positive solved MPKI %.4f", n, cal.Solved[n])
		}
	}
}
