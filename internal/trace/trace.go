// Package trace synthesizes the application workloads of the paper's
// Table VI. The paper drives its many-core simulator with Pin-captured
// instruction traces of SPEC CPU2006 and four commercial workloads; those
// traces are proprietary, so we substitute stochastic per-core request
// streams characterized exactly the way the paper characterizes its
// workloads: by misses-per-kilo-instruction (the paper's own network-load
// proxy — "the average MPKI per core ... corresponds to the network load
// for the workloads").
//
// Per-benchmark MPKI values are solved so that the eight mix averages
// reproduce Table VI's published averages exactly while staying close to
// publicly known SPEC2006 miss-rate folklore (minimum relative
// adjustment; see cmd/probe).
package trace

import (
	"fmt"

	"github.com/reprolab/hirise/internal/prng"
)

// Benchmark characterizes one application's memory behaviour.
type Benchmark struct {
	// Name is the SPEC2006 or commercial workload name.
	Name string
	// NetMPKI is the combined L1+L2 MPKI: the rate of requests entering
	// the network per kilo-instruction.
	NetMPKI float64
	// L2MissRatio is the fraction of network requests that also miss in
	// the shared L2 and travel on to a memory controller.
	L2MissRatio float64
	// Burstiness is the mean length, in misses, of a miss burst; misses
	// cluster in hot phases rather than arriving i.i.d.
	Burstiness float64
}

// catalog holds every benchmark named in Table VI. MPKI values are the
// cmd/probe solution; L2MissRatio and Burstiness are assigned by workload
// class (memory-streaming > server > compute-bound).
var catalog = []Benchmark{
	{"milc", 45.34, 0.50, 6},
	{"applu", 21.32, 0.35, 4},
	{"astar", 14.59, 0.30, 4},
	{"sjeng", 1.50, 0.20, 2},
	{"tonto", 3.03, 0.20, 2},
	{"hmmer", 3.10, 0.20, 2},
	{"sjas", 32.36, 0.40, 8},
	{"gcc", 8.69, 0.25, 3},
	{"sjbb", 47.96, 0.40, 8},
	{"gromacs", 4.79, 0.20, 2},
	{"xalan", 31.63, 0.35, 6},
	{"libquantum", 57.14, 0.55, 8},
	{"barnes", 9.91, 0.25, 3},
	{"tpcw", 70.14, 0.40, 8},
	{"povray", 2.00, 0.15, 2},
	{"swim", 67.00, 0.55, 8},
	{"leslie", 30.58, 0.40, 5},
	{"omnet", 45.77, 0.40, 6},
	{"art", 40.07, 0.45, 6},
	{"mcf", 170.35, 0.55, 10},
	{"ocean", 32.99, 0.45, 5},
	{"lbm", 42.64, 0.55, 8},
	{"deal", 11.31, 0.25, 3},
	{"sap", 45.07, 0.40, 8},
	{"namd", 3.07, 0.15, 2},
	{"Gems", 89.58, 0.55, 10},
	{"soplex", 44.85, 0.45, 6},
}

// Catalog returns all benchmarks, in a stable order.
func Catalog() []Benchmark { return append([]Benchmark(nil), catalog...) }

// Lookup returns the benchmark with the given name.
func Lookup(name string) (Benchmark, error) {
	for _, b := range catalog {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("trace: unknown benchmark %q", name)
}

// MixPart is one benchmark's multiplicity within a workload mix.
type MixPart struct {
	Bench string
	Count int
}

// Mix is one of Table VI's multi-programmed workloads for the 64-core
// system.
type Mix struct {
	// Name is the row label (Mix1..Mix8).
	Name string
	// PaperMPKI is the average MPKI Table VI reports for the mix.
	PaperMPKI float64
	// PaperSpeedup is the Hi-Rise-over-2D speedup Table VI reports.
	PaperSpeedup float64
	// Parts lists the applications and instance counts (they sum to 64).
	Parts []MixPart
}

// TableVIMixes returns the paper's eight workload mixes.
func TableVIMixes() []Mix {
	return []Mix{
		{"Mix1", 15.0, 1.02, []MixPart{{"milc", 11}, {"applu", 11}, {"astar", 10}, {"sjeng", 11}, {"tonto", 11}, {"hmmer", 10}}},
		{"Mix2", 21.3, 1.04, []MixPart{{"sjas", 11}, {"gcc", 11}, {"sjbb", 11}, {"gromacs", 11}, {"sjeng", 10}, {"xalan", 10}}},
		{"Mix3", 33.3, 1.06, []MixPart{{"milc", 11}, {"libquantum", 10}, {"astar", 11}, {"barnes", 11}, {"tpcw", 11}, {"povray", 10}}},
		{"Mix4", 38.4, 1.06, []MixPart{{"astar", 11}, {"swim", 11}, {"leslie", 10}, {"omnet", 10}, {"sjas", 11}, {"art", 11}}},
		{"Mix5", 52.2, 1.08, []MixPart{{"mcf", 11}, {"ocean", 10}, {"gromacs", 10}, {"lbm", 11}, {"deal", 11}, {"sap", 11}}},
		{"Mix6", 58.4, 1.09, []MixPart{{"mcf", 10}, {"namd", 11}, {"hmmer", 11}, {"tpcw", 11}, {"omnet", 10}, {"swim", 11}}},
		// Table VI's Mix7 counts sum to 63 as printed (10+11+11+10+11+10);
		// we give sap one extra instance to fill the 64th core.
		{"Mix7", 66.9, 1.16, []MixPart{{"Gems", 10}, {"sjbb", 11}, {"sjas", 11}, {"mcf", 10}, {"xalan", 11}, {"sap", 11}}},
		{"Mix8", 76.0, 1.15, []MixPart{{"milc", 11}, {"tpcw", 10}, {"Gems", 11}, {"mcf", 11}, {"sjas", 11}, {"soplex", 10}}},
	}
}

// Cores returns the total instance count of the mix.
func (m Mix) Cores() int {
	n := 0
	for _, p := range m.Parts {
		n += p.Count
	}
	return n
}

// AvgMPKI returns the mix's average per-core MPKI under the catalog.
func (m Mix) AvgMPKI() float64 {
	total, n := 0.0, 0
	for _, p := range m.Parts {
		b, err := Lookup(p.Bench)
		if err != nil {
			panic(err)
		}
		total += b.NetMPKI * float64(p.Count)
		n += p.Count
	}
	return total / float64(n)
}

// Assign expands the mix into a per-core benchmark assignment for the
// given core count and shuffles placement randomly — the paper's
// "allocation is done randomly, and is oblivious of the layer-to-layer
// dependencies in the switch".
func (m Mix) Assign(cores int, seed uint64) ([]Benchmark, error) {
	if m.Cores() != cores {
		return nil, fmt.Errorf("trace: mix %s has %d instances for %d cores", m.Name, m.Cores(), cores)
	}
	out := make([]Benchmark, 0, cores)
	for _, p := range m.Parts {
		b, err := Lookup(p.Bench)
		if err != nil {
			return nil, err
		}
		for i := 0; i < p.Count; i++ {
			out = append(out, b)
		}
	}
	idx := prng.New(seed).Perm(cores)
	shuffled := make([]Benchmark, cores)
	for i, j := range idx {
		shuffled[j] = out[i]
	}
	return shuffled, nil
}

// MissStream generates a benchmark's miss process: a two-phase modulated
// Bernoulli stream whose long-run rate is NetMPKI/1000 misses per
// instruction, with misses clustered into hot phases of mean length
// Burstiness (hot duty cycle 1/4, cold phases quiet).
type MissStream struct {
	bench Benchmark
	hot   bool
}

// NewMissStream returns a stream for the benchmark.
func NewMissStream(b Benchmark) *MissStream { return &MissStream{bench: b} }

// Miss reports whether the next instruction misses, advancing the phase
// process.
func (s *MissStream) Miss(rng *prng.Source) bool {
	const duty = 0.25
	rate := s.bench.NetMPKI / 1000
	hotRate := rate / duty
	if hotRate > 1 {
		hotRate = 1 // extremely miss-heavy benchmarks saturate the hot phase
	}
	// Phase transitions sized for mean hot length Burstiness/hotRate
	// instructions and duty cycle 1/4.
	hotLen := s.bench.Burstiness / hotRate
	pExit := 1 / hotLen
	pEnter := pExit * duty / (1 - duty)
	if s.hot {
		if rng.Bernoulli(pExit) {
			s.hot = false
		}
	} else if rng.Bernoulli(pEnter) {
		s.hot = true
	}
	if !s.hot {
		return false
	}
	return rng.Bernoulli(hotRate)
}
