package trace

import (
	"math"
	"testing"

	"github.com/reprolab/hirise/internal/prng"
)

func TestCatalogCoversAllMixes(t *testing.T) {
	for _, m := range TableVIMixes() {
		for _, p := range m.Parts {
			if _, err := Lookup(p.Bench); err != nil {
				t.Errorf("%s: %v", m.Name, err)
			}
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("doom3"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestMixesSumTo64Cores(t *testing.T) {
	for _, m := range TableVIMixes() {
		if m.Cores() != 64 {
			t.Errorf("%s: %d instances, want 64", m.Name, m.Cores())
		}
	}
}

// TestMixMPKIMatchesTableVI is the calibration check: the catalog's
// per-benchmark MPKIs must reproduce the paper's per-mix averages.
func TestMixMPKIMatchesTableVI(t *testing.T) {
	for _, m := range TableVIMixes() {
		got := m.AvgMPKI()
		if rel := math.Abs(got-m.PaperMPKI) / m.PaperMPKI; rel > 0.02 {
			t.Errorf("%s: avg MPKI %.2f, paper %.1f", m.Name, got, m.PaperMPKI)
		}
	}
}

func TestMixMPKIsAreMonotone(t *testing.T) {
	mixes := TableVIMixes()
	for i := 1; i < len(mixes); i++ {
		if mixes[i].AvgMPKI() <= mixes[i-1].AvgMPKI() {
			t.Errorf("mix MPKIs should increase: %s (%.1f) vs %s (%.1f)",
				mixes[i-1].Name, mixes[i-1].AvgMPKI(), mixes[i].Name, mixes[i].AvgMPKI())
		}
	}
}

func TestAssignShufflesButPreservesMultiset(t *testing.T) {
	m := TableVIMixes()[0]
	a, err := m.Assign(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Assign(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, x := range a {
		counts[x.Name]++
	}
	for _, p := range m.Parts {
		if counts[p.Bench] != p.Count {
			t.Errorf("%s count %d, want %d", p.Bench, counts[p.Bench], p.Count)
		}
	}
	same := true
	for i := range a {
		if a[i].Name != b[i].Name {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical placement")
	}
}

func TestAssignRejectsWrongCoreCount(t *testing.T) {
	if _, err := TableVIMixes()[0].Assign(32, 1); err == nil {
		t.Error("wrong core count accepted")
	}
}

func TestMissStreamLongRunRate(t *testing.T) {
	for _, name := range []string{"sjeng", "astar", "milc", "mcf"} {
		b, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		s := NewMissStream(b)
		rng := prng.New(5)
		misses := 0
		const instructions = 2000000
		for i := 0; i < instructions; i++ {
			if s.Miss(rng) {
				misses++
			}
		}
		got := float64(misses) / instructions * 1000
		if rel := math.Abs(got-b.NetMPKI) / b.NetMPKI; rel > 0.08 {
			t.Errorf("%s: measured MPKI %.2f, want %.2f", name, got, b.NetMPKI)
		}
	}
}

func TestMissStreamIsBursty(t *testing.T) {
	b, err := Lookup("mcf")
	if err != nil {
		t.Fatal(err)
	}
	s := NewMissStream(b)
	rng := prng.New(9)
	// Count miss pairs within a short window; bursty streams have far
	// more short-gap pairs than an i.i.d. stream at the same rate.
	last, short := -1000, 0
	misses := 0
	const instructions = 500000
	for i := 0; i < instructions; i++ {
		if s.Miss(rng) {
			misses++
			if i-last <= 4 {
				short++
			}
			last = i
		}
	}
	iidShortFrac := 1 - math.Pow(1-b.NetMPKI/1000, 4)
	gotFrac := float64(short) / float64(misses)
	if gotFrac < 1.5*iidShortFrac {
		t.Errorf("short-gap fraction %.3f vs i.i.d. %.3f: stream not bursty", gotFrac, iidShortFrac)
	}
}

func TestCatalogSane(t *testing.T) {
	for _, b := range Catalog() {
		if b.NetMPKI <= 0 || b.NetMPKI > 250 {
			t.Errorf("%s: implausible MPKI %v", b.Name, b.NetMPKI)
		}
		if b.L2MissRatio < 0 || b.L2MissRatio > 1 {
			t.Errorf("%s: bad L2 miss ratio %v", b.Name, b.L2MissRatio)
		}
		if b.Burstiness < 1 {
			t.Errorf("%s: burstiness %v", b.Name, b.Burstiness)
		}
	}
}
