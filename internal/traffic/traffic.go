// Package traffic implements the synthetic traffic patterns of the
// paper's evaluation (§V, §VI): uniform random, hotspot, bursty, the
// custom adversarial pattern of §III-B, the inter-layer-only pathological
// corner of §VI-B, and standard permutation patterns used by the
// extension ablations.
//
// Every pattern implements sim.Traffic. Injection is Bernoulli at the
// offered load unless the pattern documents otherwise (Bursty shapes the
// process; fixed-set patterns inject only from their active inputs).
package traffic

import (
	"math/bits"

	"github.com/reprolab/hirise/internal/prng"
	"github.com/reprolab/hirise/internal/topo"
)

// Uniform sends each packet to an output drawn uniformly at random
// ("UR" in the paper).
type Uniform struct {
	// Radix is the switch port count.
	Radix int
}

// Next implements sim.Traffic.
func (u Uniform) Next(_ int, _ int64, load float64, rng *prng.Source) (int, bool) {
	if !rng.Bernoulli(load) {
		return 0, false
	}
	return rng.Intn(u.Radix), true
}

// Hotspot sends every packet from every input to one output (the paper's
// hotspot experiment targets output 63).
type Hotspot struct {
	// Target is the hot output.
	Target int
}

// Next implements sim.Traffic.
func (h Hotspot) Next(_ int, _ int64, load float64, rng *prng.Source) (int, bool) {
	if !rng.Bernoulli(load) {
		return 0, false
	}
	return h.Target, true
}

// Fixed injects only from the inputs present in Flows, each always
// sending to its fixed destination. It expresses the paper's custom
// adversarial patterns; Adversarial returns the §III-B instance.
type Fixed struct {
	// Flows maps source input to destination output.
	Flows map[int]int
}

// Adversarial returns the paper's worked adversarial pattern: inputs
// {3,7,11,15} on layer 1 and input {20} on layer 2 all targeting output
// 63 on layer 4.
func Adversarial() Fixed {
	return Fixed{Flows: map[int]int{3: 63, 7: 63, 11: 63, 15: 63, 20: 63}}
}

// Next implements sim.Traffic.
func (f Fixed) Next(input int, _ int64, load float64, rng *prng.Source) (int, bool) {
	dest, ok := f.Flows[input]
	if !ok || !rng.Bernoulli(load) {
		return 0, false
	}
	return dest, true
}

// Bursty modulates uniform-random traffic with a two-state Markov on/off
// process per input: bursts of geometrically distributed length alternate
// with idle periods sized so the long-run rate equals the offered load.
type Bursty struct {
	// Radix is the switch port count.
	Radix int
	// MeanBurst is the mean on-period length in packets (default 8).
	MeanBurst float64
	on        []bool
}

// NewBursty returns a bursty generator over the given radix with the
// given mean burst length.
func NewBursty(radix int, meanBurst float64) *Bursty {
	if meanBurst < 1 {
		meanBurst = 1
	}
	return &Bursty{Radix: radix, MeanBurst: meanBurst, on: make([]bool, radix)}
}

// Next implements sim.Traffic. During a burst the input injects every
// cycle; the on->off and off->on transition probabilities keep the duty
// cycle equal to load.
func (b *Bursty) Next(input int, _ int64, load float64, rng *prng.Source) (int, bool) {
	if load >= 1 {
		return rng.Intn(b.Radix), true
	}
	if load <= 0 {
		return 0, false
	}
	pOff := 1 / b.MeanBurst
	// Duty cycle d = pOn/(pOn+pOff) must equal load.
	pOn := pOff * load / (1 - load)
	if b.on[input] {
		if rng.Bernoulli(pOff) {
			b.on[input] = false
		}
	} else if rng.Bernoulli(pOn) {
		b.on[input] = true
	}
	if !b.on[input] {
		return 0, false
	}
	return rng.Intn(b.Radix), true
}

// Shift sends input i to output (i+By) mod N — the classic adversarial
// permutation for multi-hop fabrics: with By = N/2 every mesh packet
// crosses the bisection, and with By equal to one dragonfly group every
// packet takes a global link, the worst case minimal routing admits and
// the case Valiant routing exists to balance.
type Shift struct {
	// N is the endpoint count.
	N int
	// By is the shift distance.
	By int
}

// Next implements sim.Traffic.
func (t Shift) Next(input int, _ int64, load float64, rng *prng.Source) (int, bool) {
	if !rng.Bernoulli(load) {
		return 0, false
	}
	return (input + t.By) % t.N, true
}

// Permutation sends input i to a fixed output perm[i]; a contention-free
// pattern on a flat crossbar.
type Permutation struct {
	perm []int
}

// NewRandomPermutation draws a permutation with the given seed.
func NewRandomPermutation(radix int, seed uint64) Permutation {
	return Permutation{perm: prng.New(seed).Perm(radix)}
}

// NewPermutation wraps an explicit permutation.
func NewPermutation(perm []int) Permutation {
	return Permutation{perm: append([]int(nil), perm...)}
}

// Next implements sim.Traffic.
func (p Permutation) Next(input int, _ int64, load float64, rng *prng.Source) (int, bool) {
	if !rng.Bernoulli(load) {
		return 0, false
	}
	return p.perm[input], true
}

// BitReverse sends input i to the output whose index is i's bit-reversal,
// a classic adversarial permutation for hierarchical fabrics. Radix must
// be a power of two.
type BitReverse struct {
	// Radix is the switch port count (power of two).
	Radix int
}

// Next implements sim.Traffic.
func (t BitReverse) Next(input int, _ int64, load float64, rng *prng.Source) (int, bool) {
	if !rng.Bernoulli(load) {
		return 0, false
	}
	w := bits.Len(uint(t.Radix)) - 1
	return int(bits.Reverse64(uint64(input)) >> (64 - w)), true
}

// InterLayerWorstCase is the paper's §VI-B pathological corner: every
// packet crosses layers (input on layer l targets the output with the
// same local index on layer (l+1) mod L), so inputs sharing an L2LC under
// input binning request distinct outputs and the channels serialize them.
type InterLayerWorstCase struct {
	// Cfg is the Hi-Rise configuration defining the layer geometry.
	Cfg topo.Config
}

// Next implements sim.Traffic.
func (w InterLayerWorstCase) Next(input int, _ int64, load float64, rng *prng.Source) (int, bool) {
	if !rng.Bernoulli(load) {
		return 0, false
	}
	l := w.Cfg.LayerOf(input)
	dest := w.Cfg.Port((l+1)%w.Cfg.Layers, w.Cfg.LocalIndex(input))
	return dest, true
}

// LayerMix blends intra-layer and global traffic: with probability
// LocalFrac a packet targets a uniform output on the source's own layer,
// otherwise a uniform output anywhere. Sweeping LocalFrac quantifies how
// layer-aware placement and routing relieve the L2LC bottleneck (paper
// §VI-E).
type LayerMix struct {
	// Cfg defines the layer geometry.
	Cfg topo.Config
	// LocalFrac is the probability a packet stays on its layer.
	LocalFrac float64
}

// Next implements sim.Traffic.
func (w LayerMix) Next(input int, _ int64, load float64, rng *prng.Source) (int, bool) {
	if !rng.Bernoulli(load) {
		return 0, false
	}
	if rng.Bernoulli(w.LocalFrac) {
		l := w.Cfg.LayerOf(input)
		return w.Cfg.Port(l, rng.Intn(w.Cfg.PortsPerLayer())), true
	}
	return rng.Intn(w.Cfg.Radix), true
}

// BinAdversarial activates only the inputs that share L2LC channel 0
// under input binning (local index divisible by the channel multiplicity)
// and sends each to a distinct output on the next layer. Fixed binning
// serializes them through one channel while priority-based allocation
// spreads them over all free channels — the §III-A motivation for the
// priority policy.
type BinAdversarial struct {
	// Cfg defines the layer and channel geometry.
	Cfg topo.Config
}

// Next implements sim.Traffic.
func (w BinAdversarial) Next(input int, _ int64, load float64, rng *prng.Source) (int, bool) {
	li := w.Cfg.LocalIndex(input)
	if li%w.Cfg.Channels != 0 || !rng.Bernoulli(load) {
		return 0, false
	}
	l := w.Cfg.LayerOf(input)
	return w.Cfg.Port((l+1)%w.Cfg.Layers, li), true
}

// LayerLocal keeps all traffic within the source's layer, uniformly over
// its local outputs: the opposite corner from InterLayerWorstCase, where
// Hi-Rise behaves like L independent small crossbars.
type LayerLocal struct {
	// Cfg defines the layer geometry.
	Cfg topo.Config
}

// Next implements sim.Traffic.
func (w LayerLocal) Next(input int, _ int64, load float64, rng *prng.Source) (int, bool) {
	if !rng.Bernoulli(load) {
		return 0, false
	}
	l := w.Cfg.LayerOf(input)
	return w.Cfg.Port(l, rng.Intn(w.Cfg.PortsPerLayer())), true
}
