package traffic

import (
	"math"
	"testing"

	"github.com/reprolab/hirise/internal/prng"
	"github.com/reprolab/hirise/internal/topo"
)

func rate(t *testing.T, next func(rng *prng.Source) bool, draws int) float64 {
	t.Helper()
	rng := prng.New(7)
	hits := 0
	for i := 0; i < draws; i++ {
		if next(rng) {
			hits++
		}
	}
	return float64(hits) / float64(draws)
}

func TestUniformRateAndSpread(t *testing.T) {
	u := Uniform{Radix: 16}
	rng := prng.New(3)
	counts := make([]int, 16)
	injected := 0
	const draws = 40000
	for i := 0; i < draws; i++ {
		if d, ok := u.Next(0, int64(i), 0.25, rng); ok {
			counts[d]++
			injected++
		}
	}
	if r := float64(injected) / draws; math.Abs(r-0.25) > 0.01 {
		t.Errorf("injection rate %v, want 0.25", r)
	}
	expect := float64(injected) / 16
	for d, c := range counts {
		if math.Abs(float64(c)-expect) > 5*math.Sqrt(expect) {
			t.Errorf("dest %d: count %d, expect ~%.0f", d, c, expect)
		}
	}
}

func TestHotspotAlwaysTargets(t *testing.T) {
	h := Hotspot{Target: 63}
	rng := prng.New(1)
	for i := 0; i < 1000; i++ {
		if d, ok := h.Next(i%64, int64(i), 1, rng); !ok || d != 63 {
			t.Fatalf("dest %d ok %v", d, ok)
		}
	}
}

func TestFixedOnlyActiveInputs(t *testing.T) {
	f := Adversarial()
	rng := prng.New(1)
	for in := 0; in < 64; in++ {
		d, ok := f.Next(in, 0, 1, rng)
		_, active := f.Flows[in]
		if ok != active {
			t.Errorf("input %d: ok=%v, active=%v", in, ok, active)
		}
		if ok && d != 63 {
			t.Errorf("input %d: dest %d, want 63", in, d)
		}
	}
}

func TestBurstyLongRunRate(t *testing.T) {
	for _, load := range []float64{0.1, 0.3, 0.6} {
		b := NewBursty(8, 8)
		rng := prng.New(11)
		hits := 0
		const draws = 200000
		for i := 0; i < draws; i++ {
			if _, ok := b.Next(0, int64(i), load, rng); ok {
				hits++
			}
		}
		if r := float64(hits) / draws; math.Abs(r-load) > 0.03 {
			t.Errorf("load %v: long-run rate %v", load, r)
		}
	}
}

func TestBurstyIsActuallyBursty(t *testing.T) {
	// At the same average load, consecutive-injection runs must be far
	// longer than Bernoulli would produce.
	b := NewBursty(8, 16)
	rng := prng.New(2)
	run, maxRun := 0, 0
	for i := 0; i < 100000; i++ {
		if _, ok := b.Next(0, int64(i), 0.2, rng); ok {
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 0
		}
	}
	if maxRun < 16 {
		t.Errorf("max burst %d, expected long bursts", maxRun)
	}
}

func TestBurstyEdgeLoads(t *testing.T) {
	b := NewBursty(8, 8)
	rng := prng.New(1)
	if _, ok := b.Next(0, 0, 0, rng); ok {
		t.Error("load 0 injected")
	}
	if _, ok := b.Next(0, 0, 1, rng); !ok {
		t.Error("load 1 did not inject")
	}
}

func TestPermutationFixedDest(t *testing.T) {
	p := NewRandomPermutation(16, 42)
	rng := prng.New(1)
	first := make(map[int]int)
	for round := 0; round < 3; round++ {
		for in := 0; in < 16; in++ {
			d, ok := p.Next(in, 0, 1, rng)
			if !ok {
				t.Fatal("load 1 did not inject")
			}
			if prev, seen := first[in]; seen && prev != d {
				t.Fatalf("input %d: dest changed %d -> %d", in, prev, d)
			}
			first[in] = d
		}
	}
	seen := make(map[int]bool)
	for _, d := range first {
		if seen[d] {
			t.Fatal("permutation has duplicate destination")
		}
		seen[d] = true
	}
}

func TestBitReverse(t *testing.T) {
	b := BitReverse{Radix: 8}
	rng := prng.New(1)
	want := map[int]int{0: 0, 1: 4, 2: 2, 3: 6, 4: 1, 5: 5, 6: 3, 7: 7}
	for in, exp := range want {
		if d, ok := b.Next(in, 0, 1, rng); !ok || d != exp {
			t.Errorf("input %d -> %d, want %d", in, d, exp)
		}
	}
}

func TestInterLayerWorstCaseGeometry(t *testing.T) {
	cfg := topo.Config{Radix: 64, Layers: 4, Channels: 4}
	w := InterLayerWorstCase{Cfg: cfg}
	rng := prng.New(1)
	for in := 0; in < 64; in++ {
		d, ok := w.Next(in, 0, 1, rng)
		if !ok {
			t.Fatal("no injection at load 1")
		}
		if cfg.LayerOf(d) == cfg.LayerOf(in) {
			t.Errorf("input %d -> %d stayed on layer", in, d)
		}
		if cfg.LocalIndex(d) != cfg.LocalIndex(in) {
			t.Errorf("input %d -> %d changed local index", in, d)
		}
	}
	// Inputs sharing a channel under input binning must request distinct
	// outputs — that is what makes the corner pathological.
	d0, _ := w.Next(0, 0, 1, rng)
	d4, _ := w.Next(4, 0, 1, rng)
	if d0 == d4 {
		t.Error("bin-sharing inputs got the same destination")
	}
}

func TestLayerMixFraction(t *testing.T) {
	cfg := topo.Config{Radix: 64, Layers: 4, Channels: 4}
	for _, frac := range []float64{0, 0.5, 1} {
		w := LayerMix{Cfg: cfg, LocalFrac: frac}
		rng := prng.New(13)
		local, total := 0, 0
		for i := 0; i < 20000; i++ {
			in := rng.Intn(64)
			d, ok := w.Next(in, 0, 1, rng)
			if !ok {
				t.Fatal("no injection at load 1")
			}
			total++
			if cfg.LayerOf(d) == cfg.LayerOf(in) {
				local++
			}
		}
		// Non-local traffic is uniform over all 64 outputs, so 1/4 of it
		// lands on the source layer anyway.
		want := frac + (1-frac)*0.25
		if got := float64(local) / float64(total); math.Abs(got-want) > 0.02 {
			t.Errorf("frac %v: local share %.3f, want %.3f", frac, got, want)
		}
	}
}

func TestBinAdversarialOnlyBinZero(t *testing.T) {
	cfg := topo.Config{Radix: 64, Layers: 4, Channels: 4}
	w := BinAdversarial{Cfg: cfg}
	rng := prng.New(3)
	for in := 0; in < 64; in++ {
		d, ok := w.Next(in, 0, 1, rng)
		wantActive := cfg.LocalIndex(in)%cfg.Channels == 0
		if ok != wantActive {
			t.Errorf("input %d: active=%v, want %v", in, ok, wantActive)
		}
		if ok && cfg.LayerOf(d) == cfg.LayerOf(in) {
			t.Errorf("input %d stayed on its layer", in)
		}
	}
}

func TestLayerLocalStaysOnLayer(t *testing.T) {
	cfg := topo.Config{Radix: 64, Layers: 4, Channels: 4}
	w := LayerLocal{Cfg: cfg}
	rng := prng.New(9)
	for i := 0; i < 2000; i++ {
		in := rng.Intn(64)
		d, ok := w.Next(in, 0, 1, rng)
		if !ok {
			t.Fatal("no injection at load 1")
		}
		if cfg.LayerOf(d) != cfg.LayerOf(in) {
			t.Fatalf("input %d -> %d left its layer", in, d)
		}
	}
}

func TestZeroLoadNeverInjects(t *testing.T) {
	rng := prng.New(4)
	gens := []interface {
		Next(int, int64, float64, *prng.Source) (int, bool)
	}{
		Uniform{Radix: 8}, Hotspot{Target: 1}, Adversarial(),
		NewRandomPermutation(8, 1), BitReverse{Radix: 8},
	}
	for _, g := range gens {
		for i := 0; i < 100; i++ {
			if _, ok := g.Next(3, int64(i), 0, rng); ok {
				t.Errorf("%T injected at load 0", g)
			}
		}
	}
}
