// Package version pins the behavioural fingerprint of the simulation
// models. The fingerprint participates in every internal/store cache
// key, so bumping it invalidates all previously cached results at once
// — stale entries simply stop being found, they never need explicit
// eviction.
package version

// Model identifies the current behaviour of the simulators and cost
// models. Bump it whenever a change alters any simulated or computed
// result (arbitration order, seed derivation, traffic generation,
// physical calibration, result serialization, ...). Refactors that keep
// outputs byte-identical must NOT bump it, so caches survive them.
//
// History:
//
//	model-3  first cached release (PR 3): store/serve subsystem landed
//	model-4  noc lane tie-break rehashed on a seed-derived flow hash
//	         (kilocore output changes); fabric simulator landed
const Model = "model-4"
