package xpoint

import (
	"math/bits"

	"github.com/reprolab/hirise/internal/bitvec"
	"github.com/reprolab/hirise/internal/obs"
)

// CLRGColumn is the bit-level inter-layer sub-block cross-point
// arrangement of paper Fig 7: one cross-point per contending line (the
// incoming L2LCs plus the local intermediate output), thermometer class
// counters for every primary input, class-grouped priority line
// segments on the reused output bus, priority-select muxes (PSMs) that
// inhibit lower classes, and a polling mux (Mux2) that picks each
// line's own wire within its class group.
//
// The classes*lines priority wires are modeled as one bitset per class
// group, so a PSM pulling a whole lower-priority group low is a single
// Zero and the in-class LRG pull-downs are one AND-NOT per requestor.
type CLRGColumn struct {
	lines    int
	classes  int
	counters []uint8      // per primary input, thermometer-coded value
	pri      []bitvec.Vec // LRG matrix over lines, one row bitset per line
	wires    []bitvec.Vec // per class: its group of priority wires, set = precharged
	connect  []bool
	audit    *obs.FairnessAudit
}

// NewCLRGColumn returns a sub-block column over the given number of
// contending lines, tracking the given number of primary inputs, with
// the given class count (the paper uses 3: {00,01,11}).
func NewCLRGColumn(lines, inputs, classes int) *CLRGColumn {
	if classes < 2 {
		panic("xpoint: CLRG needs at least 2 classes")
	}
	c := &CLRGColumn{
		lines:    lines,
		classes:  classes,
		counters: make([]uint8, inputs),
		pri:      make([]bitvec.Vec, lines),
		wires:    make([]bitvec.Vec, classes),
		connect:  make([]bool, lines),
	}
	for i := range c.pri {
		c.pri[i] = bitvec.New(lines)
		for j := i + 1; j < lines; j++ {
			c.pri[i].Set(j)
		}
	}
	for k := range c.wires {
		c.wires[k] = bitvec.New(lines)
	}
	return c
}

// Class returns the current class of a primary input (0 highest).
func (c *CLRGColumn) Class(input int) int { return int(c.counters[input]) }

// SetAudit attaches a fairness audit: every Arbitrate call then records
// one observation per requesting line — (primary input, its class at
// sense time, whether it latched the connectivity bit). The counters
// mirror arb.CLRG's audit exactly, which the differential tests use to
// show the bit-level circuit and the behavioural model starve and
// favour the same inputs. A nil audit disables auditing.
func (c *CLRGColumn) SetAudit(a *obs.FairnessAudit) { c.audit = a }

// PriorityLinesUsed returns how many output-bus wires the arbitration
// borrows: one group of `lines` wires per class (Fig 7 uses wires 0-38
// of the 128-bit bus for 13 lines x 3 classes).
func (c *CLRGColumn) PriorityLinesUsed() int { return c.classes * c.lines }

// Arbitrate runs one arbitration phase. Set bits of req mark lines
// whose L2LC (or intermediate output) carries a request for this
// output; inputOf[line] is the primary input that line presents (its
// local winner, selected by Mux1 in hardware). Returns the winning line
// or -1, committing LRG and counter updates for the winner.
func (c *CLRGColumn) Arbitrate(req bitvec.Vec, inputOf []int) int {
	// Precharge every class-grouped priority wire and clear the
	// connectivity bits.
	for k := range c.wires {
		c.wires[k].SetFirstN(c.lines)
	}
	for i := range c.connect {
		c.connect[i] = false
	}

	// Evaluate: each requesting cross-point's PSMs drive the wire
	// groups. Lower-priority classes (larger counter values) are pulled
	// down wholesale; the cross-point's own class group receives its
	// LRG pull-downs; higher-priority groups are left precharged.
	for w, word := range req {
		for word != 0 {
			i := w<<6 | bits.TrailingZeros64(word)
			word &= word - 1
			ci := int(c.counters[inputOf[i]])
			for k := ci + 1; k < c.classes; k++ {
				c.wires[k].Zero()
			}
			c.wires[ci].AndNot(c.pri[i])
		}
	}

	// Sense: each line polls, via Mux2, its own wire within its class
	// group; a surviving high wire latches the connectivity bit.
	winner := -1
	for w, word := range req {
		for word != 0 {
			i := w<<6 | bits.TrailingZeros64(word)
			word &= word - 1
			ci := int(c.counters[inputOf[i]])
			if c.wires[ci].Get(i) {
				if winner >= 0 {
					panic("xpoint: two CLRG connectivity bits latched")
				}
				winner = i
			}
		}
	}
	if c.audit != nil {
		for w, word := range req {
			for word != 0 {
				i := w<<6 | bits.TrailingZeros64(word)
				word &= word - 1
				in := inputOf[i]
				c.audit.Observe(in, int(c.counters[in]), i == winner)
			}
		}
	}
	if winner < 0 {
		return -1
	}
	c.connect[winner] = true

	// LRG is updated even on cycles decided purely by class (paper
	// §III-B4), and the winning primary input's counter increments; a
	// saturating counter halves every counter in the sub-block.
	c.pri[winner].Zero()
	for j := 0; j < c.lines; j++ {
		if j != winner {
			c.pri[j].Set(winner)
		}
	}
	in := inputOf[winner]
	if int(c.counters[in]) >= c.classes-1 {
		for i := range c.counters {
			c.counters[i] /= 2
		}
	}
	c.counters[in]++
	return winner
}

// Connected reports whether line i's connectivity bit is set.
func (c *CLRGColumn) Connected(i int) bool { return c.connect[i] }

// Disconnect clears line i's connectivity bit.
func (c *CLRGColumn) Disconnect(i int) { c.connect[i] = false }

// Drive models the data phase: the line whose connectivity bit is set
// gates its bus onto the final output.
func (c *CLRGColumn) Drive(lineData []uint64) (uint64, bool) {
	for i, on := range c.connect {
		if on {
			return lineData[i], true
		}
	}
	return 0, false
}
