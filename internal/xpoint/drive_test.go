package xpoint

import (
	"testing"

	"github.com/reprolab/hirise/internal/prng"
	"github.com/reprolab/hirise/internal/topo"
)

func TestColumnDrive(t *testing.T) {
	c := NewColumn(4)
	data := []uint64{10, 11, 12, 13}
	if _, on := c.Drive(data); on {
		t.Fatal("idle column drove the bus")
	}
	c.Arbitrate(req(4, 2))
	if v, on := c.Drive(data); !on || v != 12 {
		t.Fatalf("bus = %d/%v, want 12", v, on)
	}
	c.Disconnect(2)
	if _, on := c.Drive(data); on {
		t.Fatal("bus still driven after disconnect")
	}
}

func TestCLRGColumnDrive(t *testing.T) {
	c := NewCLRGColumn(3, 8, 3)
	data := []uint64{7, 8, 9}
	c.Arbitrate(req(3, 1), []int{0, 1, 2})
	if v, on := c.Drive(data); !on || v != 8 {
		t.Fatalf("bus = %d/%v, want 8", v, on)
	}
	c.Disconnect(1)
	if _, on := c.Drive(data); on {
		t.Fatal("bus still driven after disconnect")
	}
}

// TestEndToEndDataTransport is the datapath proof: words presented at
// the inputs of the bit-level switch appear, via the connectivity bits
// alone, exactly at the outputs their connections lead to — across
// local switches, L2LC buses, and inter-layer sub-blocks.
func TestEndToEndDataTransport(t *testing.T) {
	for _, scheme := range []topo.Scheme{topo.L2LLRG, topo.CLRG} {
		cfg := topo.Config{
			Radix: 64, Layers: 4, Channels: 4,
			Alloc: topo.InputBinned, Scheme: scheme, Classes: 3,
		}
		s, err := NewSwitch(cfg)
		if err != nil {
			t.Fatal(err)
		}
		src := prng.New(uint64(400 + int(scheme)))
		data := make([]uint64, 64)
		for i := range data {
			data[i] = uint64(1000 + i)
		}
		reqv := make([]int, 64)
		live := map[int]int{} // input -> output
		for cycle := 0; cycle < 500; cycle++ {
			for i := range reqv {
				reqv[i] = -1
				if src.Bernoulli(0.5) {
					reqv[i] = src.Intn(64)
				}
			}
			for _, g := range s.Arbitrate(reqv) {
				live[g.In] = g.Out
			}

			out, ok := s.DriveAll(data)
			seen := map[int]bool{}
			for in, o := range live {
				if !ok[o] {
					t.Fatalf("%v cycle %d: output %d not driven for live connection", scheme, cycle, o)
				}
				if out[o] != data[in] {
					t.Fatalf("%v cycle %d: output %d carries %d, want input %d's word %d",
						scheme, cycle, o, out[o], in, data[in])
				}
				seen[o] = true
			}
			for o := 0; o < 64; o++ {
				if ok[o] && !seen[o] {
					t.Fatalf("%v cycle %d: output %d driven with no live connection", scheme, cycle, o)
				}
			}

			for in := range live {
				if src.Bernoulli(0.3) {
					s.Release(in)
					delete(live, in)
				}
			}
		}
	}
}

// TestTransportSurvivesMultiCycleHolds pins the connection-persistence
// property: a connection formed once keeps gating data across later
// arbitration cycles until released.
func TestTransportSurvivesMultiCycleHolds(t *testing.T) {
	cfg := topo.Config{
		Radix: 64, Layers: 4, Channels: 4,
		Alloc: topo.InputBinned, Scheme: topo.CLRG, Classes: 3,
	}
	s, err := NewSwitch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqv := make([]int, 64)
	for i := range reqv {
		reqv[i] = -1
	}
	reqv[0] = 63 // cross-layer connection
	if g := s.Arbitrate(reqv); len(g) != 1 {
		t.Fatal("no grant")
	}
	data := make([]uint64, 64)
	data[0] = 42
	reqv[0] = -1
	reqv[5] = 62 // unrelated arbitration churn
	for cycle := 0; cycle < 8; cycle++ {
		s.Arbitrate(reqv)
		out, ok := s.DriveAll(data)
		if !ok[63] || out[63] != 42 {
			t.Fatalf("cycle %d: held connection lost its data path (%d/%v)", cycle, out[63], ok[63])
		}
	}
	s.Release(0)
	if _, ok := s.DriveAll(data); ok[63] {
		t.Fatal("output 63 still driven after release")
	}
}
