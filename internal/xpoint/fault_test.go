package xpoint

import (
	"testing"

	"github.com/reprolab/hirise/internal/bitvec"
)

// TestFailedCrosspointNeverWins: a failed cross-point neither latches a
// connectivity bit nor pulls priority lines down — the column behaves as
// if the input's request never arrived.
func TestFailedCrosspointNeverWins(t *testing.T) {
	c := NewColumn(8)
	c.Fail(0)
	req := bitvec.New(8)
	req.Set(0)
	req.Set(1)
	// Input 0 has top initial priority; dead, it must not win, and its
	// pull-down stack must not discharge input 1's line either.
	if w := c.Evaluate(req); w != 1 {
		t.Fatalf("winner = %d, want 1 (failed 0 masked, its pull-downs inert)", w)
	}
	// A request vector containing only the failed input grants nobody.
	only := bitvec.New(8)
	only.Set(0)
	if w := c.Evaluate(only); w != -1 {
		t.Fatalf("failed cross-point won: %d", w)
	}
	if !c.Failed(0) || c.Failed(1) {
		t.Fatal("fault state wrong")
	}
}

// TestRestoreRejoinsAtPreFaultPriority: Fail/Restore leaves the priority
// matrix untouched, so a restored input competes exactly where it left
// off.
func TestRestoreRejoinsAtPreFaultPriority(t *testing.T) {
	c := NewColumn(8)
	req := bitvec.New(8)
	req.Set(0)
	req.Set(1)

	c.Fail(0)
	for i := 0; i < 3; i++ {
		if w := c.Arbitrate(req); w != 1 {
			t.Fatalf("round %d: winner = %d, want 1 while 0 is failed", i, w)
		}
	}
	c.Restore(0)
	// Input 0 never won, so it still outranks 1 (which lost its top spot
	// on its first win): the restored cross-point wins immediately.
	if w := c.Arbitrate(req); w != 0 {
		t.Fatalf("restored input 0 should win at pre-fault priority, got %d", w)
	}
	// And LRG still applies afterwards: having just won, 0 now loses.
	if w := c.Arbitrate(req); w != 1 {
		t.Fatalf("after winning, 0 should yield to 1, got %d", w)
	}
}

// TestFailAllRequestors: an all-failed request set must not trip the
// two-winner panic or latch anything.
func TestFailAllRequestors(t *testing.T) {
	c := NewColumn(64)
	req := bitvec.New(64)
	for i := 0; i < 64; i++ {
		req.Set(i)
		c.Fail(i)
	}
	if w := c.Evaluate(req); w != -1 {
		t.Fatalf("fully-failed column granted %d", w)
	}
	for i := 0; i < 64; i++ {
		if c.Connected(i) {
			t.Fatalf("connectivity bit %d latched in a fully-failed column", i)
		}
	}
}
