package xpoint

import (
	"testing"

	"github.com/reprolab/hirise/internal/bitvec"
	"github.com/reprolab/hirise/internal/crossbar"
	"github.com/reprolab/hirise/internal/prng"
)

// TestColumnsReproduceFlat2DSwitch assembles a flat 2D Swizzle-Switch
// from bit-level columns (one per output, with persistent connectivity
// across held connections) and differentially tests it against
// crossbar.Switch: identical grants on identical request streams with
// random hold times.
func TestColumnsReproduceFlat2DSwitch(t *testing.T) {
	const n = 32
	cols := make([]*Column, n)
	for o := range cols {
		cols[o] = NewColumn(n)
	}
	ref := crossbar.New(n)

	held := make([]int, n) // input -> output or -1
	outBusy := make([]bool, n)
	for i := range held {
		held[i] = -1
	}
	mask := bitvec.New(n)

	src := prng.New(321)
	req := make([]int, n)
	for cycle := 0; cycle < 2000; cycle++ {
		for i := range req {
			req[i] = -1
			if src.Bernoulli(0.5) {
				req[i] = src.Intn(n)
			}
		}

		// Bit-level: arbitrate each idle output column.
		type grant struct{ in, out int }
		var bitGrants []grant
		for o := 0; o < n; o++ {
			if outBusy[o] {
				continue
			}
			mask.Zero()
			for i := 0; i < n; i++ {
				if req[i] == o && held[i] < 0 {
					mask.Set(i)
				}
			}
			if mask.None() {
				continue
			}
			if w := cols[o].Arbitrate(mask); w >= 0 {
				bitGrants = append(bitGrants, grant{w, o})
				held[w] = o
				outBusy[o] = true
			}
		}

		refGrants := ref.Arbitrate(req)
		if len(refGrants) != len(bitGrants) {
			t.Fatalf("cycle %d: %d bit-level grants vs %d behavioural", cycle, len(bitGrants), len(refGrants))
		}
		for i := range refGrants {
			if refGrants[i].In != bitGrants[i].in || refGrants[i].Out != bitGrants[i].out {
				t.Fatalf("cycle %d grant %d: (%d,%d) vs (%d,%d)", cycle, i,
					bitGrants[i].in, bitGrants[i].out, refGrants[i].In, refGrants[i].Out)
			}
		}

		for in := 0; in < n; in++ {
			if held[in] >= 0 && src.Bernoulli(0.3) {
				cols[held[in]].Disconnect(in)
				outBusy[held[in]] = false
				held[in] = -1
				ref.Release(in)
			}
		}
	}
}
