package xpoint

import (
	"fmt"

	"github.com/reprolab/hirise/internal/bitvec"
	"github.com/reprolab/hirise/internal/obs"
	"github.com/reprolab/hirise/internal/topo"
)

// Switch composes the bit-level columns into a complete Hi-Rise switch:
// per layer, one local-switch Column per intermediate output and per
// L2LC port, and one inter-layer sub-block per final output (a plain
// Column for the L-2-L LRG baseline, a CLRGColumn for CLRG). It follows
// the same two-phase, single-cycle arbitration and connection-holding
// discipline as the behavioural model in internal/core; differential
// tests require the two to produce identical grants on identical request
// streams, which validates that the behavioural simulator really
// implements the circuits of paper §IV.
//
// Only hardware-feasible configurations exist at this level: L-2-L LRG
// and CLRG arbitration with input or output binning (WLRG has no
// implementable cross-point, as the paper concludes).
type Switch struct {
	cfg   topo.Config
	ports int

	interCols []*Column     // per final output: local intermediate-output column
	chCols    []*Column     // per L2LC: local channel column
	subPlain  []*Column     // per final output (L-2-L LRG)
	subCLRG   []*CLRGColumn // per final output (CLRG)

	heldOut  []int
	heldCh   []int
	heldLine []int // sub-block line of the held connection
	outIn    []int
	chBusy   []bool

	intermReq []bitvec.Vec
	chReq     []bitvec.Vec
	intermWin []int
	chWin     []int
	lineReq   bitvec.Vec
	lineInput []int
	lineCh    []int
}

// NewSwitch builds the bit-level switch.
func NewSwitch(cfg topo.Config) (*Switch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Layers < 2 {
		return nil, fmt.Errorf("xpoint: need a 3D configuration")
	}
	switch cfg.Scheme {
	case topo.L2LLRG, topo.CLRG:
	default:
		return nil, fmt.Errorf("xpoint: scheme %v has no cross-point implementation", cfg.Scheme)
	}
	if cfg.Alloc == topo.PriorityBased {
		return nil, fmt.Errorf("xpoint: priority-based allocation is serialized in hardware; model binned policies only")
	}
	n, ports := cfg.Radix, cfg.PortsPerLayer()
	lines := cfg.SubBlockInputs()
	s := &Switch{
		cfg:       cfg,
		ports:     ports,
		interCols: make([]*Column, n),
		chCols:    make([]*Column, cfg.NumL2LC()),
		heldOut:   make([]int, n),
		heldCh:    make([]int, n),
		heldLine:  make([]int, n),
		outIn:     make([]int, n),
		chBusy:    make([]bool, cfg.NumL2LC()),
		intermReq: make([]bitvec.Vec, n),
		chReq:     make([]bitvec.Vec, cfg.NumL2LC()),
		intermWin: make([]int, n),
		chWin:     make([]int, cfg.NumL2LC()),
		lineReq:   bitvec.New(lines),
		lineInput: make([]int, lines),
		lineCh:    make([]int, lines),
	}
	if cfg.Scheme == topo.CLRG {
		s.subCLRG = make([]*CLRGColumn, n)
	} else {
		s.subPlain = make([]*Column, n)
	}
	for o := 0; o < n; o++ {
		s.interCols[o] = NewColumn(ports)
		s.intermReq[o] = bitvec.New(ports)
		if s.subCLRG != nil {
			s.subCLRG[o] = NewCLRGColumn(lines, n, cfg.Classes)
		} else {
			s.subPlain[o] = NewColumn(lines)
		}
		s.heldOut[o] = -1
		s.heldCh[o] = -1
		s.heldLine[o] = -1
		s.outIn[o] = -1
	}
	for c := range s.chCols {
		s.chCols[c] = NewColumn(ports)
		s.chReq[c] = bitvec.New(ports)
	}
	return s, nil
}

// Radix returns the port count.
func (s *Switch) Radix() int { return s.cfg.Radix }

// SetObserver attaches observability sinks. For a CLRG switch the
// observer's fairness audit is fed by every sub-block column, giving
// the same per-(input, class) counters as the behavioural model's
// audit. Passing nil detaches.
func (s *Switch) SetObserver(o *obs.Observer) {
	audit := o.Audit()
	for _, col := range s.subCLRG {
		col.SetAudit(audit)
	}
}

func (s *Switch) lineFor(d, src, ch int) int {
	sidx := src
	if src > d {
		sidx--
	}
	return sidx*s.cfg.Channels + ch
}

// Arbitrate runs one two-phase cycle at the bit level and returns the
// connections formed, holding each until Release.
func (s *Switch) Arbitrate(req []int) []topo.Grant {
	cfg := s.cfg
	for o := range s.intermReq {
		s.intermReq[o].Zero()
	}
	for c := range s.chReq {
		s.chReq[c].Zero()
	}
	for in, o := range req {
		if o < 0 || s.heldOut[in] >= 0 || s.outIn[o] >= 0 {
			continue
		}
		l, li := cfg.LayerOf(in), cfg.LocalIndex(in)
		d := cfg.LayerOf(o)
		if d == l {
			s.intermReq[o].Set(li)
			continue
		}
		cid := cfg.L2LCID(l, d, cfg.ChannelFor(in, o))
		if !s.chBusy[cid] {
			s.chReq[cid].Set(li)
		}
	}

	// Phase 1: local-switch columns evaluate; priority updates are
	// withheld until a final-output win back-propagates. Columns whose
	// resource is busy carrying a connection do not arbitrate — their
	// connectivity bit keeps gating data until Release.
	for o := range s.intermReq {
		s.intermWin[o] = -1
		if s.outIn[o] < 0 {
			s.intermWin[o] = s.interCols[o].Evaluate(s.intermReq[o])
		}
	}
	for c := range s.chReq {
		s.chWin[c] = -1
		if !s.chBusy[c] {
			s.chWin[c] = s.chCols[c].Evaluate(s.chReq[c])
		}
	}

	// Phase 2: inter-layer sub-blocks.
	var grants []topo.Grant
	lines := cfg.SubBlockInputs()
	for o := 0; o < cfg.Radix; o++ {
		if s.outIn[o] >= 0 {
			continue
		}
		d := cfg.LayerOf(o)
		s.lineReq.Zero()
		for src := 0; src < cfg.Layers; src++ {
			if src == d {
				continue
			}
			for ch := 0; ch < cfg.Channels; ch++ {
				cid := cfg.L2LCID(src, d, ch)
				w := s.chWin[cid]
				if w < 0 {
					continue
				}
				gi := cfg.Port(src, w)
				if req[gi] != o {
					continue
				}
				line := s.lineFor(d, src, ch)
				s.lineReq.Set(line)
				s.lineInput[line] = gi
				s.lineCh[line] = cid
			}
		}
		if w := s.intermWin[o]; w >= 0 {
			line := lines - 1
			s.lineReq.Set(line)
			s.lineInput[line] = cfg.Port(d, w)
			s.lineCh[line] = -1
		}
		if s.lineReq.None() {
			continue
		}
		var win int
		if s.subCLRG != nil {
			win = s.subCLRG[o].Arbitrate(s.lineReq, s.lineInput)
		} else {
			win = s.subPlain[o].Arbitrate(s.lineReq)
		}
		if win < 0 {
			continue
		}
		gi := s.lineInput[win]
		if cid := s.lineCh[win]; cid >= 0 {
			s.chCols[cid].Update(cfg.LocalIndex(gi)) // back-propagated win
			s.chBusy[cid] = true
			s.heldCh[gi] = cid
		} else {
			s.interCols[o].Update(cfg.LocalIndex(gi))
		}
		// Losing local winners' connectivity bits must not gate data;
		// only the final winner's path stays connected.
		for i := 0; i < lines; i++ {
			if i != win && s.lineReq.Get(i) {
				if cid := s.lineCh[i]; cid >= 0 {
					s.chCols[cid].Disconnect(cfg.LocalIndex(s.lineInput[i]))
				} else {
					s.interCols[o].Disconnect(cfg.LocalIndex(s.lineInput[i]))
				}
			}
		}
		s.heldOut[gi] = o
		s.heldLine[gi] = win
		s.outIn[o] = gi
		grants = append(grants, topo.Grant{In: gi, Out: o})
	}
	return grants
}

// Release frees the connection held by input in, clearing every
// connectivity bit along its path.
func (s *Switch) Release(in int) {
	o := s.heldOut[in]
	if o < 0 {
		return
	}
	li := s.cfg.LocalIndex(in)
	if cid := s.heldCh[in]; cid >= 0 {
		s.chCols[cid].Disconnect(li)
		s.chBusy[cid] = false
		s.heldCh[in] = -1
	} else {
		s.interCols[o].Disconnect(li)
	}
	if line := s.heldLine[in]; line >= 0 {
		if s.subCLRG != nil {
			s.subCLRG[o].Disconnect(line)
		} else {
			s.subPlain[o].Disconnect(line)
		}
		s.heldLine[in] = -1
	}
	s.heldOut[in] = -1
	s.outIn[o] = -1
}

// DriveAll models one data cycle through the whole fabric: every input
// presents a word, connectivity bits gate words across the local
// switches onto intermediate-output and L2LC buses, and the inter-layer
// sub-blocks gate those buses onto the final outputs. It returns the
// word observed at each output and a validity mask.
func (s *Switch) DriveAll(data []uint64) ([]uint64, []bool) {
	cfg := s.cfg
	ports := s.ports
	lines := cfg.SubBlockInputs()

	// Layer-local views of the input data.
	layerData := make([][]uint64, cfg.Layers)
	for l := range layerData {
		layerData[l] = data[l*ports : (l+1)*ports]
	}
	// Channel buses.
	chBus := make([]uint64, cfg.NumL2LC())
	chOk := make([]bool, cfg.NumL2LC())
	for cid := range s.chCols {
		src, _, _ := cfg.L2LCSrcDst(cid)
		chBus[cid], chOk[cid] = s.chCols[cid].Drive(layerData[src])
	}

	out := make([]uint64, cfg.Radix)
	ok := make([]bool, cfg.Radix)
	lineData := make([]uint64, lines)
	for o := 0; o < cfg.Radix; o++ {
		d := cfg.LayerOf(o)
		for i := range lineData {
			lineData[i] = 0
		}
		for src := 0; src < cfg.Layers; src++ {
			if src == d {
				continue
			}
			for ch := 0; ch < cfg.Channels; ch++ {
				cid := cfg.L2LCID(src, d, ch)
				if chOk[cid] {
					lineData[s.lineFor(d, src, ch)] = chBus[cid]
				}
			}
		}
		if v, on := s.interCols[o].Drive(layerData[d]); on {
			lineData[lines-1] = v
		}
		if s.subCLRG != nil {
			out[o], ok[o] = s.subCLRG[o].Drive(lineData)
		} else {
			out[o], ok[o] = s.subPlain[o].Drive(lineData)
		}
	}
	return out, ok
}
