package xpoint

import (
	"testing"
	"testing/quick"

	"github.com/reprolab/hirise/internal/bitvec"
	"github.com/reprolab/hirise/internal/core"
	"github.com/reprolab/hirise/internal/prng"
	"github.com/reprolab/hirise/internal/topo"
)

func TestNewSwitchValidation(t *testing.T) {
	if _, err := NewSwitch(topo.Config{Radix: 64, Layers: 1}); err == nil {
		t.Error("2D config accepted")
	}
	wlrg := topo.Config{Radix: 64, Layers: 4, Channels: 4, Scheme: topo.WLRG}
	if _, err := NewSwitch(wlrg); err == nil {
		t.Error("WLRG accepted — it has no cross-point implementation")
	}
	pri := topo.Config{Radix: 64, Layers: 4, Channels: 4, Alloc: topo.PriorityBased, Scheme: topo.L2LLRG}
	if _, err := NewSwitch(pri); err == nil {
		t.Error("priority-based allocation accepted")
	}
}

// TestBitLevelMatchesBehavioural is the flagship equivalence check: the
// switch assembled from paper-§IV cross-point circuits and the
// behavioural core.Switch must form identical connections on identical
// random request streams with random hold times, for both feasible
// schemes and both binned allocation policies.
func TestBitLevelMatchesBehavioural(t *testing.T) {
	for _, scheme := range []topo.Scheme{topo.L2LLRG, topo.CLRG} {
		for _, alloc := range []topo.AllocPolicy{topo.InputBinned, topo.OutputBinned} {
			cfg := topo.Config{
				Radix: 64, Layers: 4, Channels: 4,
				Alloc: alloc, Scheme: scheme, Classes: 3,
			}
			bit, err := NewSwitch(cfg)
			if err != nil {
				t.Fatal(err)
			}
			beh, err := core.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			src := prng.New(uint64(1000 + int(scheme)*10 + int(alloc)))
			req := make([]int, 64)
			held := map[int]bool{}
			for cycle := 0; cycle < 3000; cycle++ {
				for i := range req {
					req[i] = -1
					if src.Bernoulli(0.5) {
						req[i] = src.Intn(64)
					}
				}
				ga := bit.Arbitrate(req)
				gb := beh.Arbitrate(req)
				if len(ga) != len(gb) {
					t.Fatalf("%v/%v cycle %d: bit-level %v vs behavioural %v",
						scheme, alloc, cycle, ga, gb)
				}
				for i := range ga {
					if ga[i] != gb[i] {
						t.Fatalf("%v/%v cycle %d: grant %d differs: %v vs %v",
							scheme, alloc, cycle, i, ga[i], gb[i])
					}
					held[ga[i].In] = true
				}
				for in := range held {
					if src.Bernoulli(0.3) {
						bit.Release(in)
						beh.Release(in)
						delete(held, in)
					}
				}
			}
		}
	}
}

// TestBitLevelReproducesPaperSequences replays the golden Fig 4/5
// sequences on the circuit-level switch.
func TestBitLevelReproducesPaperSequences(t *testing.T) {
	req := make([]int, 64)
	for i := range req {
		req[i] = -1
	}
	for _, in := range []int{3, 7, 11, 15, 20} {
		req[in] = 63
	}
	seq := func(scheme topo.Scheme) []int {
		s, err := NewSwitch(topo.Config{
			Radix: 64, Layers: 4, Channels: 1,
			Alloc: topo.InputBinned, Scheme: scheme, Classes: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		var got []int
		for len(got) < 10 {
			for _, g := range s.Arbitrate(req) {
				got = append(got, g.In)
				s.Release(g.In)
			}
		}
		return got
	}
	l2l := seq(topo.L2LLRG)
	wantL2L := []int{3, 20, 7, 20, 11, 20, 15, 20, 3, 20}
	for i := range wantL2L {
		if l2l[i] != wantL2L[i] {
			t.Fatalf("L-2-L LRG circuit sequence %v, want %v", l2l, wantL2L)
		}
	}
	clrg := seq(topo.CLRG)
	wantCLRG := []int{3, 20, 7, 11, 15, 20, 3, 7, 11, 15}
	for i := range wantCLRG {
		if clrg[i] != wantCLRG[i] {
			t.Fatalf("CLRG circuit sequence %v, want %v", clrg, wantCLRG)
		}
	}
}

// TestColumnEvaluateDoesNotMutate verifies the evaluate/update split the
// back-propagated local update depends on.
func TestColumnEvaluateDoesNotMutate(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := prng.New(seed)
		n := 2 + src.Intn(10)
		c := NewColumn(n)
		r := bitvec.New(n)
		for i := 0; i < n; i++ {
			r.SetTo(i, src.Bernoulli(0.5))
		}
		a := c.Evaluate(r)
		b := c.Evaluate(r)
		return a == b
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBitLevelArbitrate(b *testing.B) {
	s, err := NewSwitch(topo.Config{
		Radix: 64, Layers: 4, Channels: 4,
		Alloc: topo.InputBinned, Scheme: topo.CLRG, Classes: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	req := make([]int, 64)
	for i := range req {
		req[i] = (i * 29) % 64
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range s.Arbitrate(req) {
			s.Release(g.In)
		}
	}
}
