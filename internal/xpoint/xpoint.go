// Package xpoint models the Swizzle-Switch cross-point circuits at the
// bit level (paper §II-A and §IV): the matrix crossbar's output column
// whose data lines are reused as precharged priority lines during
// arbitration, the per-cross-point priority vectors and connectivity
// bits, and the CLRG cross-point of Fig 7 with its thermometer class
// counters, priority-select muxes (PSMs), and class-grouped priority
// line segments.
//
// The package exists as an independent, circuit-faithful implementation
// of the same policies as internal/arb; differential tests drive both
// with identical request streams and require identical grants forever.
// That equivalence is the evidence that the behavioural models used by
// the simulator really do describe the silicon mechanism the paper
// builds.
package xpoint

// Column is one output column of a matrix Swizzle-Switch: n cross-points
// (one per input row) sharing the output bus, which doubles as n
// precharged priority lines during the arbitration phase.
//
// Each cross-point i stores a priority vector pri[i]: pri[i][j] set means
// input i has priority over input j for this output. During arbitration,
// every requesting cross-point pulls down the priority lines of the
// inputs it beats; a requestor whose own line stays high wins, sets its
// connectivity bit through the sense-amp latch, and the column commits
// the LRG update (winner loses to everyone).
type Column struct {
	n       int
	pri     [][]bool
	connect []bool
	lines   []bool // scratch: priority lines, true = precharged high
}

// NewColumn returns a column over n inputs with initial priority order
// 0 > 1 > ... > n-1.
func NewColumn(n int) *Column {
	c := &Column{
		n:       n,
		pri:     make([][]bool, n),
		connect: make([]bool, n),
		lines:   make([]bool, n),
	}
	for i := range c.pri {
		c.pri[i] = make([]bool, n)
		for j := i + 1; j < n; j++ {
			c.pri[i][j] = true
		}
	}
	return c
}

// Arbitrate runs one arbitration phase: precharge, evaluate, latch.
// It returns the winning input (connectivity bit set) or -1, and commits
// the self-updating LRG priority change. 2D Swizzle-Switch columns
// update unconditionally; Hi-Rise local-switch columns instead call
// Evaluate and commit with Update only when the inter-layer switch
// back-propagates a final-output win (paper §III-B1).
func (c *Column) Arbitrate(req []bool) int {
	winner := c.Evaluate(req)
	if winner >= 0 {
		c.Update(winner)
	}
	return winner
}

// Evaluate runs precharge + evaluate + latch without touching the
// priority bits, returning the winner or -1.
func (c *Column) Evaluate(req []bool) int {
	// Precharge: all priority lines high, connectivity bits cleared
	// (the previous connection's release precedes re-arbitration).
	for i := range c.lines {
		c.lines[i] = true
		c.connect[i] = false
	}
	// Evaluate: every requesting cross-point's pull-down transistors
	// discharge the lines of the inputs it beats.
	for i := 0; i < c.n; i++ {
		if !req[i] {
			continue
		}
		for j := 0; j < c.n; j++ {
			if c.pri[i][j] {
				c.lines[j] = false
			}
		}
	}
	// Sense: a requestor whose own polled line stayed high latches its
	// connectivity bit.
	winner := -1
	for i := 0; i < c.n; i++ {
		if req[i] && c.lines[i] {
			if winner >= 0 {
				panic("xpoint: two connectivity bits latched — priority matrix corrupt")
			}
			winner = i
		}
	}
	if winner < 0 {
		return -1
	}
	c.connect[winner] = true
	return winner
}

// Update commits the self-updating LRG priority change for a winner:
// its row clears (beats nobody) and its column sets in every other
// cross-point (everybody beats it).
func (c *Column) Update(winner int) {
	for j := 0; j < c.n; j++ {
		if j != winner {
			c.pri[winner][j] = false
			c.pri[j][winner] = true
		}
	}
}

// Connected reports whether input i's connectivity bit is set (it
// carries data until the next arbitration phase).
func (c *Column) Connected(i int) bool { return c.connect[i] }

// Disconnect clears input i's connectivity bit (the release at the end
// of a packet).
func (c *Column) Disconnect(i int) { c.connect[i] = false }

// Drive models the data phase: the cross-point whose connectivity bit is
// set gates its input word onto the shared output bus. It returns the
// bus value and whether any cross-point drove it.
func (c *Column) Drive(inputData []uint64) (uint64, bool) {
	for i, on := range c.connect {
		if on {
			return inputData[i], true
		}
	}
	return 0, false
}

// PriorityLinesUsed returns how many output-bus wires the arbitration
// phase borrows: one per input row.
func (c *Column) PriorityLinesUsed() int { return c.n }
