// Package xpoint models the Swizzle-Switch cross-point circuits at the
// bit level (paper §II-A and §IV): the matrix crossbar's output column
// whose data lines are reused as precharged priority lines during
// arbitration, the per-cross-point priority vectors and connectivity
// bits, and the CLRG cross-point of Fig 7 with its thermometer class
// counters, priority-select muxes (PSMs), and class-grouped priority
// line segments.
//
// The package exists as an independent, circuit-faithful implementation
// of the same policies as internal/arb; differential tests drive both
// with identical request streams and require identical grants forever.
// That equivalence is the evidence that the behavioural models used by
// the simulator really do describe the silicon mechanism the paper
// builds.
//
// Request vectors and priority rows are word-parallel bitsets
// (internal/bitvec): a cross-point's whole row of pull-down transistors
// discharges its priority lines in one AND-NOT per word, which is the
// software rendering of the circuit's single-cycle bit-parallel
// evaluate phase.
package xpoint

import (
	"math/bits"

	"github.com/reprolab/hirise/internal/bitvec"
)

// Column is one output column of a matrix Swizzle-Switch: n cross-points
// (one per input row) sharing the output bus, which doubles as n
// precharged priority lines during the arbitration phase.
//
// Each cross-point i stores a priority vector pri[i]: bit j of pri[i]
// set means input i has priority over input j for this output. During
// arbitration, every requesting cross-point pulls down the priority
// lines of the inputs it beats; a requestor whose own line stays high
// wins, sets its connectivity bit through the sense-amp latch, and the
// column commits the LRG update (winner loses to everyone).
type Column struct {
	n       int
	pri     []bitvec.Vec
	connect []bool
	lines   bitvec.Vec // scratch: priority lines, set = precharged high
	failed  bitvec.Vec // failed cross-points: their requests never evaluate
}

// NewColumn returns a column over n inputs with initial priority order
// 0 > 1 > ... > n-1.
func NewColumn(n int) *Column {
	c := &Column{
		n:       n,
		pri:     make([]bitvec.Vec, n),
		connect: make([]bool, n),
		lines:   bitvec.New(n),
		failed:  bitvec.New(n),
	}
	for i := range c.pri {
		c.pri[i] = bitvec.New(n)
		for j := i + 1; j < n; j++ {
			c.pri[i].Set(j)
		}
	}
	return c
}

// Arbitrate runs one arbitration phase: precharge, evaluate, latch.
// It returns the winning input (connectivity bit set) or -1, and commits
// the self-updating LRG priority change. 2D Swizzle-Switch columns
// update unconditionally; Hi-Rise local-switch columns instead call
// Evaluate and commit with Update only when the inter-layer switch
// back-propagates a final-output win (paper §III-B1).
func (c *Column) Arbitrate(req bitvec.Vec) int {
	winner := c.Evaluate(req)
	if winner >= 0 {
		c.Update(winner)
	}
	return winner
}

// Evaluate runs precharge + evaluate + latch without touching the
// priority bits, returning the winner or -1.
func (c *Column) Evaluate(req bitvec.Vec) int {
	// Precharge: all priority lines high, connectivity bits cleared
	// (the previous connection's release precedes re-arbitration).
	c.lines.SetFirstN(c.n)
	for i := range c.connect {
		c.connect[i] = false
	}
	// Evaluate: every requesting cross-point's pull-down transistors
	// discharge the lines of the inputs it beats — one word-parallel
	// AND-NOT per requestor. A failed cross-point's request word is
	// masked before it can pull anything down: the dead stack neither
	// discharges lines nor latches a connectivity bit.
	for w, word := range req {
		word &^= c.failed[w]
		for word != 0 {
			i := w<<6 | bits.TrailingZeros64(word)
			word &= word - 1
			c.lines.AndNot(c.pri[i])
		}
	}
	// Sense: a requestor whose own polled line stayed high latches its
	// connectivity bit.
	winner := -1
	for w, word := range req {
		if rem := (word &^ c.failed[w]) & c.lines[w]; rem != 0 {
			if winner >= 0 || rem&(rem-1) != 0 {
				panic("xpoint: two connectivity bits latched — priority matrix corrupt")
			}
			winner = w<<6 | bits.TrailingZeros64(rem)
		}
	}
	if winner < 0 {
		return -1
	}
	c.connect[winner] = true
	return winner
}

// Update commits the self-updating LRG priority change for a winner:
// its row clears (beats nobody) and its column sets in every other
// cross-point (everybody beats it).
func (c *Column) Update(winner int) {
	c.pri[winner].Zero()
	for j := 0; j < c.n; j++ {
		if j != winner {
			c.pri[j].Set(winner)
		}
	}
}

// Connected reports whether input i's connectivity bit is set (it
// carries data until the next arbitration phase).
func (c *Column) Connected(i int) bool { return c.connect[i] }

// Disconnect clears input i's connectivity bit (the release at the end
// of a packet).
func (c *Column) Disconnect(i int) { c.connect[i] = false }

// Drive models the data phase: the cross-point whose connectivity bit is
// set gates its input word onto the shared output bus. It returns the
// bus value and whether any cross-point drove it.
func (c *Column) Drive(inputData []uint64) (uint64, bool) {
	for i, on := range c.connect {
		if on {
			return inputData[i], true
		}
	}
	return 0, false
}

// Fail marks cross-point i faulty: from the next Evaluate on, input i
// can never win this column. The priority matrix is untouched, so a
// later Restore rejoins the input at its pre-fault priority.
func (c *Column) Fail(i int) { c.failed.Set(i) }

// Restore returns cross-point i to service.
func (c *Column) Restore(i int) { c.failed.Clear(i) }

// Failed reports whether cross-point i is out of service.
func (c *Column) Failed(i int) bool { return c.failed.Get(i) }

// PriorityLinesUsed returns how many output-bus wires the arbitration
// phase borrows: one per input row.
func (c *Column) PriorityLinesUsed() int { return c.n }
