package xpoint

import (
	"testing"
	"testing/quick"

	"github.com/reprolab/hirise/internal/arb"
	"github.com/reprolab/hirise/internal/bitvec"
	"github.com/reprolab/hirise/internal/prng"
)

func req(n int, set ...int) bitvec.Vec {
	r := bitvec.New(n)
	for _, i := range set {
		r.Set(i)
	}
	return r
}

func TestColumnBasicGrant(t *testing.T) {
	c := NewColumn(4)
	if w := c.Arbitrate(req(4, 2)); w != 2 {
		t.Fatalf("winner %d, want 2", w)
	}
	if !c.Connected(2) || c.Connected(0) {
		t.Fatal("connectivity bits wrong")
	}
}

func TestColumnNoRequestors(t *testing.T) {
	c := NewColumn(4)
	if w := c.Arbitrate(req(4)); w != -1 {
		t.Fatalf("winner %d, want -1", w)
	}
	for i := 0; i < 4; i++ {
		if c.Connected(i) {
			t.Fatal("stray connectivity bit")
		}
	}
}

func TestColumnSelfUpdatingLRG(t *testing.T) {
	c := NewColumn(3)
	all := req(3, 0, 1, 2)
	var seq []int
	for i := 0; i < 9; i++ {
		seq = append(seq, c.Arbitrate(all))
	}
	want := []int{0, 1, 2, 0, 1, 2, 0, 1, 2}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("sequence %v, want %v", seq, want)
		}
	}
}

// TestColumnMatchesBehaviouralLRG is the package's reason to exist: the
// circuit mechanism (pull-down priority lines, sense, self-update) must
// agree with the behavioural LRG arbiter on every request stream.
func TestColumnMatchesBehaviouralLRG(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := prng.New(seed)
		n := 2 + src.Intn(15)
		col, ref := NewColumn(n), arb.NewLRG(n)
		r := make([]bool, n)
		rv := bitvec.New(n)
		for step := 0; step < 400; step++ {
			for i := range r {
				r[i] = src.Bernoulli(0.4)
			}
			rv.FromBools(r)
			a := col.Arbitrate(rv)
			b := ref.Grant(r)
			if a != b {
				return false
			}
			if b >= 0 {
				ref.Update(b)
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestColumnPriorityLineBudget(t *testing.T) {
	// The 2D Swizzle-Switch reuses the 128-bit output bus as priority
	// lines: a radix-64 column needs 64 of the 128 wires.
	if got := NewColumn(64).PriorityLinesUsed(); got > 128 {
		t.Fatalf("%d priority lines exceed the 128-bit output bus", got)
	}
}

func TestCLRGColumnClassBeatsLRG(t *testing.T) {
	c := NewCLRGColumn(3, 8, 3)
	inputOf := []int{0, 1, 2}
	// Line 0 (input 0) wins twice -> class 2.
	c.Arbitrate(req(3, 0), inputOf)
	c.Arbitrate(req(3, 0), inputOf)
	if got := c.Class(0); got != 2 {
		t.Fatalf("class %d, want 2", got)
	}
	// Now line 2 (input 2, class 0) must beat line 0 despite line 0
	// holding top LRG priority... which it no longer does, so check the
	// stronger case: line 0 at class 2 vs line 1 at class 0.
	if w := c.Arbitrate(req(3, 0, 1), inputOf); w != 1 {
		t.Fatalf("winner %d, want 1 (lower class)", w)
	}
}

// TestCLRGColumnMatchesBehaviouralCLRG drives the Fig 7 circuit and the
// behavioural CLRG arbiter with identical streams: winners and class
// states must agree forever, including across counter-halving events.
func TestCLRGColumnMatchesBehaviouralCLRG(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		src := prng.New(seed)
		lines := 2 + src.Intn(12)
		inputs := lines * (1 + src.Intn(4))
		classes := 2 + src.Intn(3)
		col := NewCLRGColumn(lines, inputs, classes)
		ref := arb.NewCLRG(lines, inputs, classes)
		r := make([]bool, lines)
		rv := bitvec.New(lines)
		inputOf := make([]int, lines)
		for step := 0; step < 400; step++ {
			for i := range r {
				r[i] = src.Bernoulli(0.5)
				// Each line presents one of its binned inputs.
				inputOf[i] = (i + lines*src.Intn(inputs/lines)) % inputs
			}
			rv.FromBools(r)
			a := col.Arbitrate(rv, inputOf)
			b := ref.Grant(r, inputOf)
			if a != b {
				return false
			}
			if b >= 0 {
				ref.Update(b, inputOf[b])
			}
			for in := 0; in < inputs; in++ {
				if col.Class(in) != ref.Class(in) {
					return false
				}
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCLRGColumnFig7LineBudget(t *testing.T) {
	// Fig 7's configuration: 13 lines x 3 classes = 39 wires of the
	// 128-bit output bus (the figure labels wires 0-38).
	c := NewCLRGColumn(13, 64, 3)
	if got := c.PriorityLinesUsed(); got != 39 {
		t.Fatalf("priority lines %d, want 39", got)
	}
	if got := c.PriorityLinesUsed(); got > 128 {
		t.Fatalf("%d wires exceed the output bus", got)
	}
}

func TestCLRGColumnConnectivityExclusive(t *testing.T) {
	src := prng.New(12)
	c := NewCLRGColumn(13, 64, 3)
	r := bitvec.New(13)
	inputOf := make([]int, 13)
	for step := 0; step < 2000; step++ {
		for i := 0; i < 13; i++ {
			r.SetTo(i, src.Bernoulli(0.6))
			inputOf[i] = src.Intn(64)
		}
		w := c.Arbitrate(r, inputOf) // panics internally on double latch
		set := 0
		for i := 0; i < 13; i++ {
			if c.Connected(i) {
				set++
			}
		}
		if (w >= 0 && set != 1) || (w < 0 && set != 0) {
			t.Fatalf("connectivity bits %d with winner %d", set, w)
		}
	}
}

func TestCLRGColumnRejectsBadClasses(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCLRGColumn(4, 8, 1)
}

func BenchmarkColumnArbitrate64(b *testing.B) {
	c := NewColumn(64)
	r := bitvec.New(64)
	for i := 0; i < 64; i += 2 {
		r.Set(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Arbitrate(r)
	}
}

func BenchmarkColumnArbitrate128(b *testing.B) {
	c := NewColumn(128)
	r := bitvec.New(128)
	for i := 0; i < 128; i += 2 {
		r.Set(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Arbitrate(r)
	}
}

func BenchmarkCLRGColumnArbitrate13(b *testing.B) {
	c := NewCLRGColumn(13, 64, 3)
	r := bitvec.New(13)
	inputOf := make([]int, 13)
	for i := 0; i < 13; i++ {
		if i%2 == 0 {
			r.Set(i)
		}
		inputOf[i] = i * 4
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Arbitrate(r, inputOf)
	}
}
